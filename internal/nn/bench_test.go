package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"extrapdnn/internal/mat"
)

// benchNet mirrors the pretraining benchmark topology (11 inputs, 43
// classes). The layer products stay below mat's parallelThreshold so the
// kernels run serially and the allocation counts below hold on any machine.
func benchNet(rng *rand.Rand) *Network {
	return NewNetwork([]int{11, 64, 48, 43}, rng)
}

func benchData(rng *rand.Rand, rows int) (*mat.Matrix, []int) {
	x := mat.New(rows, 11)
	labels := make([]int, rows)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	for i := range labels {
		labels[i] = rng.Intn(43)
	}
	return x, labels
}

// BenchmarkTrainBatch measures one steady-state optimizer step on the
// preallocated workspace. The regression target is 0 allocs/op: the batch
// loop must never touch the heap once the one-time workspace setup is done.
func BenchmarkTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := benchNet(rng)
	const batchSize = 64
	x, labels := benchData(rng, 4*batchSize)
	states := make([]*optState, len(net.Layers))
	for i, l := range net.Layers {
		states[i] = &optState{
			mW: mat.New(l.W.Rows(), l.W.Cols()),
			vW: mat.New(l.W.Rows(), l.W.Cols()),
			mB: make([]float64, len(l.B)),
			vB: make([]float64, len(l.B)),
		}
	}
	opts := TrainOptions{BatchSize: batchSize}.withDefaults()
	ws := newTrainWorkspace(net, x, batchSize, 0, 0, 0, false)
	batch := make([]int, batchSize)
	for i := range batch {
		batch[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.trainBatch(x, labels, batch, states, opts, rng, ws)
	}
}

// BenchmarkTrainBatchDropout exercises the mask path of the workspace; it
// must stay allocation-free too.
func BenchmarkTrainBatchDropout(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := benchNet(rng)
	const batchSize = 64
	x, labels := benchData(rng, 4*batchSize)
	states := make([]*optState, len(net.Layers))
	for i, l := range net.Layers {
		states[i] = &optState{
			mW: mat.New(l.W.Rows(), l.W.Cols()),
			vW: mat.New(l.W.Rows(), l.W.Cols()),
			mB: make([]float64, len(l.B)),
			vB: make([]float64, len(l.B)),
		}
	}
	opts := TrainOptions{BatchSize: batchSize, Dropout: 0.2}.withDefaults()
	ws := newTrainWorkspace(net, x, batchSize, 0, 0, 0, true)
	batch := make([]int, batchSize)
	for i := range batch {
		batch[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.trainBatch(x, labels, batch, states, opts, rng, ws)
	}
}

// BenchmarkForwardInference measures the ping-pong inference path on reused
// buffers — the validation-loss fast path. 0 allocs/op in steady state.
func BenchmarkForwardInference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := benchNet(rng)
	x, _ := benchData(rng, 256)
	buf := net.newInferBuffers(x.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.forwardOutput(x, buf)
	}
}

// BenchmarkTrainEpochs is the end-to-end Train comparison point recorded in
// docs/PERFORMANCE.md (setup included, measured per full Train call).
func BenchmarkTrainEpochs(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, labels := benchData(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := benchNet(rand.New(rand.NewSource(5)))
		net.Train(x, labels, TrainOptions{Epochs: 2, BatchSize: 64, Rng: rand.New(rand.NewSource(6))})
	}
}

// BenchmarkTrainEpochsF32 is the float32 twin of BenchmarkTrainEpochs — the
// precision fast-path speedup recorded in docs/PERFORMANCE.md is the ratio of
// the two.
func BenchmarkTrainEpochsF32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, labels := benchData(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := benchNet(rand.New(rand.NewSource(5)))
		net.Train(x, labels, TrainOptions{Epochs: 2, BatchSize: 64, Rng: rand.New(rand.NewSource(6)), Precision: Float32})
	}
}

// BenchmarkForwardBatched measures the InferSession batched-inference path at
// representative batch sizes and both precisions: rows=1 is the historical
// per-line classification cost, rows=64 a typical profile entry, rows=1024 a
// cross-kernel batch. 0 allocs/op in steady state at every size — that is the
// point of the session's cached views (enforced by check.sh).
func BenchmarkForwardBatched(b *testing.B) {
	for _, rows := range []int{1, 64, 1024} {
		for _, prec := range []Precision{Float64, Float32} {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, prec), func(b *testing.B) {
				rng := rand.New(rand.NewSource(7))
				net := benchNet(rng)
				x, _ := benchData(rng, rows)
				s := net.NewInferSession(rows, prec)
				s.Forward(x)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Forward(x)
				}
			})
		}
	}
}

// BenchmarkTopKPerRow is the legacy classification baseline: Network.TopK on
// each row separately, exactly what the per-line classification loop did
// before the batched path existed. Every call re-runs the network through
// freshly allocated per-layer buffers — this is the "before" column of the
// batched cross-kernel inference speedup in docs/PERFORMANCE.md.
func BenchmarkTopKPerRow(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	net := benchNet(rng)
	x, _ := benchData(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < x.Rows(); r++ {
			net.TopK(x.Row(r), 3)
		}
	}
}

// BenchmarkTopKBatch measures the batched classification path (forward plus
// per-row top-k ranking) at both precisions. The float32 variant ranks raw
// logits on the SIMD forward; its per-row cost against BenchmarkTopKPerRow is
// the headline batched-inference speedup.
func BenchmarkTopKBatch(b *testing.B) {
	for _, rows := range []int{64, 1024} {
		for _, prec := range []Precision{Float64, Float32} {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, prec), func(b *testing.B) {
				rng := rand.New(rand.NewSource(9))
				net := benchNet(rng)
				x, _ := benchData(rng, rows)
				s := net.NewInferSession(rows, prec)
				s.TopKBatch(x, 3)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.TopKBatch(x, 3)
				}
			})
		}
	}
}

// BenchmarkForwardPerRow is the unbatched baseline for the batched-inference
// speedup table: the same total rows as BenchmarkForwardBatched/rows=64, but
// fed through the session one row at a time the way the per-line
// classification loop used to.
func BenchmarkForwardPerRow(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	net := benchNet(rng)
	x, _ := benchData(rng, 64)
	s := net.NewInferSession(1, Float64)
	rowViews := make([]*mat.Matrix, x.Rows())
	for r := range rowViews {
		rowViews[r] = mat.NewFromData(1, x.Cols(), x.Row(r))
	}
	s.Forward(rowViews[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rv := range rowViews {
			s.Forward(rv)
		}
	}
}
