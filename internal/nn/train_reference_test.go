package nn

import (
	"math"
	"math/rand"
	"testing"

	"extrapdnn/internal/mat"
)

// This file keeps a deliberately naive reference implementation of the
// training loop — the pre-workspace version that allocates every matrix per
// batch and materializes explicit transposes with Matrix.T(). The production
// path in train.go must produce bit-identical results: the fused kernels
// MulATTo/MulBTTo replicate the accumulation order of MulTo on a transposed
// operand, and the workspace only changes where buffers live, not what is
// computed. Any divergence means the refactor changed the arithmetic.

// refTrain mirrors Network.Train with per-batch allocations.
func refTrain(n *Network, x *mat.Matrix, labels []int, opts TrainOptions) TrainStats {
	opts = opts.withDefaults()
	numSamples := x.Rows()
	states := make([]*optState, len(n.Layers))
	for i, l := range n.Layers {
		states[i] = &optState{
			mW: mat.New(l.W.Rows(), l.W.Cols()),
			vW: mat.New(l.W.Rows(), l.W.Cols()),
			mB: make([]float64, len(l.B)),
			vB: make([]float64, len(l.B)),
		}
	}
	trainCount := numSamples
	if opts.ValidationFrac > 0 && opts.ValidationFrac < 1 {
		held := int(float64(numSamples) * opts.ValidationFrac)
		if held > 0 && numSamples-held > 0 {
			trainCount = numSamples - held
		}
	}
	order := make([]int, trainCount)
	for i := range order {
		order[i] = i
	}
	stats := TrainStats{}
	bestVal := math.Inf(1)
	badEpochs := 0
	rng := opts.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(trainCount, func(a, b int) { order[a], order[b] = order[b], order[a] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < trainCount; start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > trainCount {
				end = trainCount
			}
			batch := order[start:end]
			loss := refTrainBatch(n, x, labels, batch, states, opts, rng)
			epochLoss += loss * float64(len(batch))
			batches++
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss/float64(trainCount))
		stats.Batches += batches
		if opts.LRDecay > 0 && opts.LRDecay != 1 {
			opts.LearningRate *= opts.LRDecay
		}
		if trainCount < numSamples {
			val := refMeanLoss(n, x, labels, trainCount, numSamples)
			stats.ValLoss = append(stats.ValLoss, val)
			if val < bestVal-1e-9 {
				bestVal = val
				badEpochs = 0
			} else if opts.Patience > 0 {
				badEpochs++
				if badEpochs >= opts.Patience {
					stats.Stopped = true
					break
				}
			}
		}
	}
	return stats
}

// refMeanLoss copies the validation rows into a fresh matrix and runs the
// all-activations forward pass.
func refMeanLoss(n *Network, x *mat.Matrix, labels []int, from, to int) float64 {
	count := to - from
	in := mat.New(count, x.Cols())
	for r := 0; r < count; r++ {
		copy(in.Row(r), x.Row(from+r))
	}
	acts := n.ForwardBatch(in)
	probs := acts[len(acts)-1]
	loss := 0.0
	for r := 0; r < count; r++ {
		p := probs.At(r, labels[from+r])
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(count)
}

// refTrainBatch is the allocating forward/backward pass: fresh matrices for
// input, activations, masks, deltas and gradients, and explicit transposes
// in both backpropagation products.
func refTrainBatch(n *Network, x *mat.Matrix, labels []int, batch []int, states []*optState, opts TrainOptions, dropRng *rand.Rand) float64 {
	b := len(batch)
	in := mat.New(b, x.Cols())
	for r, idx := range batch {
		copy(in.Row(r), x.Row(idx))
	}
	acts := n.ForwardBatch(in)

	var masks []*mat.Matrix
	if opts.Dropout > 0 && opts.Dropout < 1 {
		keepScale := 1 / (1 - opts.Dropout)
		masks = make([]*mat.Matrix, len(acts))
		for i := 1; i < len(acts)-1; i++ {
			mask := mat.New(acts[i].Rows(), acts[i].Cols())
			md, ad := mask.Data(), acts[i].Data()
			for j := range md {
				if dropRng.Float64() >= opts.Dropout {
					md[j] = keepScale
				}
				ad[j] *= md[j]
			}
			masks[i] = mask
			l := n.Layers[i]
			z := mat.New(b, l.Out())
			mat.MulTo(z, acts[i], l.W)
			addBias(z, l.B)
			applyActivation(z, l.Act)
			acts[i+1] = z
		}
	}
	probs := acts[len(acts)-1]

	loss := 0.0
	delta := probs.Clone()
	for r, idx := range batch {
		lbl := labels[idx]
		p := probs.At(r, lbl)
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
		delta.Set(r, lbl, delta.At(r, lbl)-1)
	}
	loss /= float64(b)
	delta.Scale(1 / float64(b))

	for i := len(n.Layers) - 1; i >= 0; i-- {
		l := n.Layers[i]
		aPrev := acts[i]
		dW := mat.New(l.W.Rows(), l.W.Cols())
		mat.MulTo(dW, aPrev.T(), delta)
		dB := make([]float64, len(l.B))
		for r := 0; r < delta.Rows(); r++ {
			row := delta.Row(r)
			for c, v := range row {
				dB[c] += v
			}
		}
		if i > 0 {
			prev := mat.New(b, l.In())
			mat.MulTo(prev, delta, l.W.T())
			applyActivationGrad(prev, acts[i], n.Layers[i-1].Act)
			if masks != nil && masks[i] != nil {
				pd, md := prev.Data(), masks[i].Data()
				for j := range pd {
					pd[j] *= md[j]
				}
			}
			delta = prev
		}
		applyUpdate(l, states[i], dW, dB, opts)
	}
	return loss
}

// TestTrainBitIdenticalToReference runs the workspace-based Train and the
// allocating reference trainer from identical initial networks, rng seeds and
// data, and demands bit-identical epoch losses, validation losses and final
// weights across optimizers, dropout, validation/early-stopping and partial
// trailing batches.
func TestTrainBitIdenticalToReference(t *testing.T) {
	cases := []struct {
		name string
		opts TrainOptions
	}{
		{"adamax-defaults", TrainOptions{Epochs: 4, BatchSize: 16}},
		{"partial-batch", TrainOptions{Epochs: 3, BatchSize: 13}},
		{"sgd", TrainOptions{Epochs: 3, BatchSize: 16, Optimizer: SGD, LearningRate: 0.1}},
		{"adam-lrdecay", TrainOptions{Epochs: 3, BatchSize: 16, Optimizer: Adam, LRDecay: 0.9}},
		{"dropout", TrainOptions{Epochs: 3, BatchSize: 16, Dropout: 0.3}},
		{"validation-patience", TrainOptions{Epochs: 8, BatchSize: 16, ValidationFrac: 0.25, Patience: 2}},
		{"weight-decay", TrainOptions{Epochs: 2, BatchSize: 16, WeightDecay: 0.01}},
		{"nil-rng-fallback", TrainOptions{Epochs: 2, BatchSize: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, labels := twoBlobs(rand.New(rand.NewSource(21)), 90)
			netA := NewNetwork([]int{2, 12, 9, 2}, rand.New(rand.NewSource(22)))
			netB := NewNetwork([]int{2, 12, 9, 2}, rand.New(rand.NewSource(22)))

			optsA, optsB := tc.opts, tc.opts
			if tc.name != "nil-rng-fallback" {
				optsA.Rng = rand.New(rand.NewSource(23))
				optsB.Rng = rand.New(rand.NewSource(23))
			}
			gotStats := netA.Train(x, labels, optsA)
			wantStats := refTrain(netB, x, labels, optsB)

			if len(gotStats.EpochLoss) != len(wantStats.EpochLoss) {
				t.Fatalf("epoch count %d vs reference %d", len(gotStats.EpochLoss), len(wantStats.EpochLoss))
			}
			for e := range gotStats.EpochLoss {
				if gotStats.EpochLoss[e] != wantStats.EpochLoss[e] {
					t.Fatalf("epoch %d loss %v != reference %v", e, gotStats.EpochLoss[e], wantStats.EpochLoss[e])
				}
			}
			if len(gotStats.ValLoss) != len(wantStats.ValLoss) {
				t.Fatalf("val-loss count %d vs reference %d", len(gotStats.ValLoss), len(wantStats.ValLoss))
			}
			for e := range gotStats.ValLoss {
				if gotStats.ValLoss[e] != wantStats.ValLoss[e] {
					t.Fatalf("epoch %d val loss %v != reference %v", e, gotStats.ValLoss[e], wantStats.ValLoss[e])
				}
			}
			if gotStats.Stopped != wantStats.Stopped || gotStats.Batches != wantStats.Batches {
				t.Fatalf("stats %+v vs reference %+v", gotStats, wantStats)
			}
			for li := range netA.Layers {
				if !netA.Layers[li].W.Equal(netB.Layers[li].W, 0) {
					t.Fatalf("layer %d weights differ from reference", li)
				}
				for bi := range netA.Layers[li].B {
					if netA.Layers[li].B[bi] != netB.Layers[li].B[bi] {
						t.Fatalf("layer %d bias %d differs from reference", li, bi)
					}
				}
			}
		})
	}
}
