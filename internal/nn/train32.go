package nn

import (
	"context"
	"math"
	"math/rand"
	"time"

	"extrapdnn/internal/faultinject"
	"extrapdnn/internal/mat"
	"extrapdnn/internal/obs"
)

// The float32 training engine. TrainOptions.Precision == Float32 routes
// TrainCtx here: the network's float64 master weights are mirrored into a
// float32 working copy, the whole epoch/batch loop — forward, backward,
// optimizer, dropout, validation, divergence detection — runs in float32 on
// the mat float32 twins, and the result is written back to the float64
// master at the end (including cancelled and diverged runs, mirroring the
// in-place mutation semantics of the float64 path). The loop structure and
// rng consumption order mirror train.go exactly, so the two precisions see
// the same shuffles and dropout masks; only the arithmetic width differs.
// The float64 path is untouched — see DESIGN.md §11 for the precision policy.

// layer32 is the float32 working copy of one dense layer.
type layer32 struct {
	w   *mat.Matrix32
	b   []float32
	act Activation
}

// network32 is the float32 working copy of a network's parameters.
type network32 struct {
	layers []layer32
}

// newNetwork32 mirrors the float64 master weights into float32.
func newNetwork32(n *Network) *network32 {
	n32 := &network32{layers: make([]layer32, len(n.Layers))}
	for i, l := range n.Layers {
		w := mat.New32(l.W.Rows(), l.W.Cols())
		mat.Convert32(w, l.W)
		b := make([]float32, len(l.B))
		for j, v := range l.B {
			b[j] = float32(v)
		}
		n32.layers[i] = layer32{w: w, b: b, act: l.Act}
	}
	return n32
}

// writeBack copies the float32 working parameters into the float64 master.
func (n32 *network32) writeBack(n *Network) {
	for i, l := range n32.layers {
		mat.Convert64(n.Layers[i].W, l.w)
		for j, v := range l.b {
			n.Layers[i].B[j] = float64(v)
		}
	}
}

// optState32 holds per-layer float32 optimizer accumulators.
type optState32 struct {
	mW, vW *mat.Matrix32
	mB, vB []float32
	step   int
}

// trainCtx32 is the float32 mirror of the TrainCtx body. The caller has
// already validated inputs and applied option defaults.
func (n *Network) trainCtx32(ctx context.Context, x *mat.Matrix, labels []int, opts TrainOptions) (TrainStats, error) {
	numSamples := x.Rows()

	obsTrainRuns.Inc()
	obsTrainRunsF32.Inc()
	spanCtx, span := obs.StartSpan(ctx, "nn.train")
	if span != nil {
		span.SetString("precision", Float32.String())
	}
	ctx = spanCtx

	n32 := newNetwork32(n)
	// The working copy is authoritative from here on; mirror the float64
	// path's in-place mutation on every exit, completed or aborted.
	defer n32.writeBack(n)

	states := make([]*optState32, len(n32.layers))
	for i, l := range n32.layers {
		states[i] = &optState32{
			mW: mat.New32(l.w.Rows(), l.w.Cols()),
			vW: mat.New32(l.w.Rows(), l.w.Cols()),
			mB: make([]float32, len(l.b)),
			vB: make([]float32, len(l.b)),
		}
	}

	trainCount := numSamples
	if opts.ValidationFrac > 0 && opts.ValidationFrac < 1 {
		held := int(float64(numSamples) * opts.ValidationFrac)
		if held > 0 && numSamples-held > 0 {
			trainCount = numSamples - held
		}
	}

	order := make([]int, trainCount)
	for i := range order {
		order[i] = i
	}

	effBatch := opts.BatchSize
	if effBatch > trainCount {
		effBatch = trainCount
	}
	dropout := opts.Dropout > 0 && opts.Dropout < 1
	ws := newTrainWorkspace32(n32, x, effBatch, trainCount%effBatch, trainCount, numSamples-trainCount, dropout)

	stats := TrainStats{}
	if span != nil {
		defer func() {
			span.SetInt("epochs", int64(len(stats.EpochLoss)))
			span.SetFloat("final_loss", stats.FinalLoss())
			span.SetBool("diverged", stats.Diverged)
			span.End()
		}()
	}
	bestVal := math.Inf(1)
	badEpochs := 0
	rng := opts.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var epochStart time.Time
		if obs.MetricsEnabled() {
			epochStart = time.Now()
		}
		rng.Shuffle(trainCount, func(a, b int) { order[a], order[b] = order[b], order[a] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < trainCount; start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > trainCount {
				end = trainCount
			}
			batch := order[start:end]
			loss := n32.trainBatch32(x, labels, batch, states, opts, rng, ws)
			epochLoss += loss * float64(len(batch))
			batches++
		}
		meanLoss := epochLoss / float64(trainCount)
		if faultinject.Enabled {
			faultinject.Fire(faultinject.SiteTrainEpochLoss, &meanLoss)
		}
		stats.EpochLoss = append(stats.EpochLoss, meanLoss)
		stats.Batches += batches
		if obs.MetricsEnabled() {
			obsTrainEpochs.Inc()
			obsTrainBatches.Add(uint64(batches))
			obsEpochSeconds.Observe(time.Since(epochStart).Seconds())
			obsLastEpochLoss.Set(meanLoss)
			obsLossRing.Push(meanLoss)
		}

		if !isFinite(meanLoss) || !n32.weightsHealthy32() {
			stats.Diverged = true
			stats.DivergedEpoch = epoch + 1
			obsTrainDivergence.Inc()
			return stats, ctx.Err()
		}

		if opts.LRDecay > 0 && opts.LRDecay != 1 {
			opts.LearningRate *= opts.LRDecay
		}
		if trainCount < numSamples {
			val := n32.meanLoss32(ws.valIn, labels, trainCount, ws.valBuf)
			stats.ValLoss = append(stats.ValLoss, val)
			if val < bestVal-1e-9 {
				bestVal = val
				badEpochs = 0
			} else if opts.Patience > 0 {
				badEpochs++
				if badEpochs >= opts.Patience {
					stats.Stopped = true
					break
				}
			}
		}
	}
	return stats, ctx.Err()
}

// weightsHealthy32 is the float32 divergence detector. WeightExplosionLimit
// (1e8) sits far below the float32 range, so the same threshold applies.
func (n32 *network32) weightsHealthy32() bool {
	limit := float32(WeightExplosionLimit)
	for _, l := range n32.layers {
		for _, w := range l.w.Data() {
			if w != w || w > limit || w < -limit {
				return false
			}
		}
		for _, b := range l.b {
			if b != b || b > limit || b < -limit {
				return false
			}
		}
	}
	return true
}

// batchBuffers32 is the float32 twin of batchBuffers.
type batchBuffers32 struct {
	rows   int
	acts   []*mat.Matrix32
	deltas []*mat.Matrix32
	masks  []*mat.Matrix32
}

// trainWorkspace32 is the float32 twin of trainWorkspace. The validation tail
// cannot be a zero-copy view of the float64 input, so it is converted once
// into an owned float32 matrix at workspace construction.
type trainWorkspace32 struct {
	full    *batchBuffers32
	partial *batchBuffers32

	dW []*mat.Matrix32
	dB [][]float32

	valIn  *mat.Matrix32
	valBuf *inferBuffers32
}

func view32(rows, cols int, backing []float32) *mat.Matrix32 {
	return mat.NewFromData32(rows, cols, backing[:rows*cols])
}

func newBatchBuffers32(n32 *network32, inSize, rows int, actBack, deltaBack, maskBack [][]float32, dropout bool) *batchBuffers32 {
	bb := &batchBuffers32{rows: rows}
	bb.acts = make([]*mat.Matrix32, len(n32.layers)+1)
	bb.acts[0] = view32(rows, inSize, actBack[0])
	for i, l := range n32.layers {
		bb.acts[i+1] = view32(rows, l.w.Cols(), actBack[i+1])
	}
	bb.deltas = make([]*mat.Matrix32, len(n32.layers))
	for i, l := range n32.layers {
		bb.deltas[i] = view32(rows, l.w.Cols(), deltaBack[i])
	}
	if dropout {
		bb.masks = make([]*mat.Matrix32, len(n32.layers)+1)
		for i := 1; i < len(bb.acts)-1; i++ {
			bb.masks[i] = view32(rows, n32.layers[i-1].w.Cols(), maskBack[i])
		}
	}
	return bb
}

func newTrainWorkspace32(n32 *network32, x *mat.Matrix, batch, partialRows, valFrom, valRows int, dropout bool) *trainWorkspace32 {
	inSize := n32.layers[0].w.Rows()
	widths := make([]int, len(n32.layers)+1)
	widths[0] = inSize
	for i, l := range n32.layers {
		widths[i+1] = l.w.Cols()
	}
	actBack := make([][]float32, len(widths))
	for i, w := range widths {
		actBack[i] = make([]float32, batch*w)
	}
	deltaBack := make([][]float32, len(n32.layers))
	for i, l := range n32.layers {
		deltaBack[i] = make([]float32, batch*l.w.Cols())
	}
	var maskBack [][]float32
	if dropout {
		maskBack = make([][]float32, len(widths))
		for i := 1; i < len(widths)-1; i++ {
			maskBack[i] = make([]float32, batch*widths[i])
		}
	}

	ws := &trainWorkspace32{
		full: newBatchBuffers32(n32, inSize, batch, actBack, deltaBack, maskBack, dropout),
	}
	if partialRows > 0 {
		ws.partial = newBatchBuffers32(n32, inSize, partialRows, actBack, deltaBack, maskBack, dropout)
	}
	ws.dW = make([]*mat.Matrix32, len(n32.layers))
	ws.dB = make([][]float32, len(n32.layers))
	for i, l := range n32.layers {
		ws.dW[i] = mat.New32(l.w.Rows(), l.w.Cols())
		ws.dB[i] = make([]float32, len(l.b))
	}
	if valRows > 0 {
		cols := x.Cols()
		ws.valIn = mat.New32(valRows, cols)
		src := x.Data()[valFrom*cols : (valFrom+valRows)*cols]
		dst := ws.valIn.Data()
		for i, v := range src {
			dst[i] = float32(v)
		}
		ws.valBuf = n32.newInferBuffers32(valRows)
	}
	return ws
}

func (ws *trainWorkspace32) buffersFor(rows int) *batchBuffers32 {
	if rows == ws.full.rows {
		return ws.full
	}
	return ws.partial
}

// trainBatch32 mirrors trainBatch in float32. The batch rows are downcast
// from the float64 sample matrix as they are gathered; everything after that
// stays float32 until the loss, which is accumulated in float64 for
// reporting-precision parity with the float64 path.
func (n32 *network32) trainBatch32(x *mat.Matrix, labels []int, batch []int, states []*optState32, opts TrainOptions, dropRng *rand.Rand, ws *trainWorkspace32) float64 {
	b := len(batch)
	bb := ws.buffersFor(b)
	in := bb.acts[0]
	for r, idx := range batch {
		src := x.Row(idx)
		dst := in.Row(r)
		for c, v := range src {
			dst[c] = float32(v)
		}
	}

	numLayers := len(n32.layers)
	keepScale := float32(0)
	if bb.masks != nil {
		keepScale = float32(1 / (1 - opts.Dropout))
	}
	for i, l := range n32.layers {
		z := bb.acts[i+1]
		mat.MulTo32(z, bb.acts[i], l.w)
		addBias32(z, l.b)
		applyActivation32(z, l.act)
		if bb.masks != nil && i+1 < numLayers {
			md, ad := bb.masks[i+1].Data(), z.Data()
			for j := range md {
				md[j] = 0
				if dropRng.Float64() >= opts.Dropout {
					md[j] = keepScale
				}
				ad[j] *= md[j]
			}
		}
	}
	probs := bb.acts[numLayers]

	loss := 0.0
	delta := bb.deltas[numLayers-1]
	copy(delta.Data(), probs.Data())
	for r, idx := range batch {
		lbl := labels[idx]
		p := float64(probs.At(r, lbl))
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
		delta.Set(r, lbl, delta.At(r, lbl)-1)
	}
	loss /= float64(b)
	delta.Scale(float32(1 / float64(b)))

	for i := numLayers - 1; i >= 0; i-- {
		l := n32.layers[i]
		aPrev := bb.acts[i]

		dW := ws.dW[i]
		mat.MulATTo32(dW, aPrev, delta)
		dB := ws.dB[i]
		for c := range dB {
			dB[c] = 0
		}
		for r := 0; r < delta.Rows(); r++ {
			row := delta.Row(r)
			for c, v := range row {
				dB[c] += v
			}
		}

		if i > 0 {
			prev := bb.deltas[i-1]
			mat.MulBTTo32(prev, delta, l.w)
			applyActivationGrad32(prev, bb.acts[i], n32.layers[i-1].act)
			if bb.masks != nil && bb.masks[i] != nil {
				pd, md := prev.Data(), bb.masks[i].Data()
				for j := range pd {
					pd[j] *= md[j]
				}
			}
			delta = prev
		}

		applyUpdate32(l, states[i], dW, dB, opts)
	}
	return loss
}

// applyActivation32 applies the layer activation in place. Tanh uses the
// native float32 approximation (mat.Tanh32s, vectorized on SIMD hosts);
// softmax keeps math.Exp because the output layer is narrow and its
// probabilities feed top-k ranking.
func applyActivation32(z *mat.Matrix32, act Activation) {
	switch act {
	case Linear:
	case Tanh:
		mat.Tanh32s(z.Data())
	case ReLU:
		d := z.Data()
		for i, v := range d {
			if v < 0 {
				d[i] = 0
			}
		}
	case Softmax:
		for i := 0; i < z.Rows(); i++ {
			softmaxRow32(z.Row(i))
		}
	default:
		panic("nn: unknown activation")
	}
}

// softmaxRow32 computes a numerically stable softmax in place.
func softmaxRow32(row []float32) {
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	sum := float32(0)
	for i, v := range row {
		e := float32(math.Exp(float64(v - max)))
		row[i] = e
		sum += e
	}
	for i := range row {
		row[i] /= sum
	}
}

// applyActivationGrad32 multiplies delta in place by the activation
// derivative evaluated from the post-activation values a.
func applyActivationGrad32(delta, a *mat.Matrix32, act Activation) {
	switch act {
	case Linear:
	case Tanh:
		d, av := delta.Data(), a.Data()
		for i := range d {
			d[i] *= 1 - av[i]*av[i]
		}
	case ReLU:
		d, av := delta.Data(), a.Data()
		for i := range d {
			if av[i] <= 0 {
				d[i] = 0
			}
		}
	default:
		panic("nn: activation not supported in hidden layers")
	}
}

// addBias32 adds the bias vector to every row of z.
func addBias32(z *mat.Matrix32, bias []float32) {
	for r := 0; r < z.Rows(); r++ {
		row := z.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// applyUpdate32 performs one optimizer step on a float32 layer. The moment
// decays and bias corrections are computed in float64 (they involve
// math.Pow of step counters) and applied in float32.
func applyUpdate32(l layer32, st *optState32, dW *mat.Matrix32, dB []float32, opts TrainOptions) {
	st.step++
	t := float64(st.step)
	lr := float32(opts.LearningRate)
	beta1 := float32(opts.Beta1)
	beta2 := float32(opts.Beta2)
	if opts.WeightDecay > 0 {
		l.w.Scale(1 - lr*float32(opts.WeightDecay))
	}
	switch opts.Optimizer {
	case SGD:
		l.w.AddScaled(-lr, dW)
		for i := range l.b {
			l.b[i] -= lr * dB[i]
		}
	case Adam:
		corr1 := float32(1 - math.Pow(opts.Beta1, t))
		corr2 := float32(1 - math.Pow(opts.Beta2, t))
		w, m, v, g := l.w.Data(), st.mW.Data(), st.vW.Data(), dW.Data()
		for i := range w {
			m[i] = beta1*m[i] + (1-beta1)*g[i]
			v[i] = beta2*v[i] + (1-beta2)*g[i]*g[i]
			w[i] -= lr * (m[i] / corr1) / (sqrt32(v[i]/corr2) + 1e-8)
		}
		for i := range l.b {
			st.mB[i] = beta1*st.mB[i] + (1-beta1)*dB[i]
			st.vB[i] = beta2*st.vB[i] + (1-beta2)*dB[i]*dB[i]
			l.b[i] -= lr * (st.mB[i] / corr1) / (sqrt32(st.vB[i]/corr2) + 1e-8)
		}
	default: // AdaMax
		corr1 := float32(1 - math.Pow(opts.Beta1, t))
		w, m, u, g := l.w.Data(), st.mW.Data(), st.vW.Data(), dW.Data()
		for i := range w {
			m[i] = beta1*m[i] + (1-beta1)*g[i]
			au := beta2 * u[i]
			if ag := abs32(g[i]); ag > au {
				au = ag
			}
			u[i] = au
			if u[i] > 0 {
				w[i] -= (lr / corr1) * m[i] / u[i]
			}
		}
		for i := range l.b {
			st.mB[i] = beta1*st.mB[i] + (1-beta1)*dB[i]
			au := beta2 * st.vB[i]
			if ag := abs32(dB[i]); ag > au {
				au = ag
			}
			st.vB[i] = au
			if st.vB[i] > 0 {
				l.b[i] -= (lr / corr1) * st.mB[i] / st.vB[i]
			}
		}
	}
}

func sqrt32(v float32) float32 { return float32(math.Sqrt(float64(v))) }

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// inferBuffers32 is the float32 twin of inferBuffers: two ping-pong
// activation buffers with prebuilt per-layer views for a fixed row count.
type inferBuffers32 struct {
	views []*mat.Matrix32
}

func (n32 *network32) newInferBuffers32(rows int) *inferBuffers32 {
	var even, odd int
	for i, l := range n32.layers {
		w := rows * l.w.Cols()
		if i%2 == 0 && w > even {
			even = w
		}
		if i%2 == 1 && w > odd {
			odd = w
		}
	}
	ping, pong := make([]float32, even), make([]float32, odd)
	buf := &inferBuffers32{views: make([]*mat.Matrix32, len(n32.layers))}
	for i, l := range n32.layers {
		backing := ping
		if i%2 == 1 {
			backing = pong
		}
		buf.views[i] = view32(rows, l.w.Cols(), backing)
	}
	return buf
}

// forwardOutput32 runs x through the float32 network on reused ping-pong
// buffers and returns the output activations (aliasing buf).
func (n32 *network32) forwardOutput32(x *mat.Matrix32, buf *inferBuffers32) *mat.Matrix32 {
	cur := x
	for i, l := range n32.layers {
		z := buf.views[i]
		mat.MulTo32(z, cur, l.w)
		addBias32(z, l.b)
		applyActivation32(z, l.act)
		cur = z
	}
	return cur
}

// meanLoss32 computes the mean cross-entropy on the held-out float32 tail.
func (n32 *network32) meanLoss32(in *mat.Matrix32, labels []int, from int, buf *inferBuffers32) float64 {
	probs := n32.forwardOutput32(in, buf)
	count := in.Rows()
	loss := 0.0
	for r := 0; r < count; r++ {
		p := float64(probs.At(r, labels[from+r]))
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(count)
}
