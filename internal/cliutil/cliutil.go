// Package cliutil provides the small shared pieces of the command-line
// tools: loading or pretraining classification networks, parsing topology
// flags, and table formatting.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/modelregistry"
	"extrapdnn/internal/nn"
)

// Process exit codes shared by the CLI tools, so scripts and CI can
// distinguish "everything modeled" from "some kernels failed" from "the
// deadline expired".
const (
	ExitOK             = 0 // full success
	ExitFatal          = 1 // unusable input or total failure
	ExitPartialFailure = 3 // some items failed, others delivered results
	ExitTimeout        = 4 // the -timeout deadline expired (or ctx cancelled)
)

// TimeoutContext returns a context honoring a -timeout flag value: for d <= 0
// it is context.Background() with a no-op cancel, otherwise a deadline of d
// from now. Callers must call cancel either way.
func TimeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// ExitCode maps an error to the shared exit-code convention: nil → ExitOK,
// context cancellation or deadline expiry (anywhere in the error tree) →
// ExitTimeout, anything else → ExitFatal. Partial failure is a caller-side
// decision (the caller knows whether any results were delivered).
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ExitTimeout
	default:
		return ExitFatal
	}
}

// ParseTopology parses a -topology flag value: "default", "paper", "tiny",
// or a comma-separated list of hidden-layer sizes such as "256,128,64".
func ParseTopology(s string) ([]int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return dnnmodel.DefaultTopology, nil
	case "paper":
		return dnnmodel.PaperTopology, nil
	case "tiny":
		return dnnmodel.TinyTopology, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid topology %q: each entry must be a positive integer", s)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("invalid topology %q", s)
	}
	return sizes, nil
}

// NetOptions configures LoadOrPretrainOpts — the CLI tools fill it straight
// from their flags.
type NetOptions struct {
	// NetPath loads a saved network instead of pretraining.
	NetPath string
	// Topology, SamplesPerClass, Epochs and Seed configure the pretraining
	// run (ignored with NetPath).
	Topology        string
	SamplesPerClass int
	Epochs          int
	Seed            int64
	// Float32 selects the float32 SIMD fast path for training and inference
	// (the -f32 flag); default is the bit-pinned float64 arithmetic.
	Float32 bool
	// ModelDir enables the pretrained-network registry (the -model-dir flag):
	// a network pretrained under the same effective configuration is loaded
	// instead of retrained, and fresh results are stored for later runs.
	ModelDir string
	// Verbose prints the registry digest and hit/miss outcome to stderr.
	Verbose bool
}

// Precision returns the nn precision the options select.
func (o NetOptions) Precision() nn.Precision {
	if o.Float32 {
		return nn.Float32
	}
	return nn.Float64
}

// LoadOrPretrain returns a DNN modeler: loaded from netPath when given,
// otherwise pretrained with the supplied settings (progress goes to stderr,
// keeping stdout clean for results).
func LoadOrPretrain(netPath, topology string, samplesPerClass, epochs int, seed int64) (*dnnmodel.Modeler, error) {
	return LoadOrPretrainCtx(context.Background(), netPath, topology, samplesPerClass, epochs, seed)
}

// LoadOrPretrainCtx is LoadOrPretrain with cancellation: a -timeout deadline
// also bounds the (potentially minutes-long) pretraining run, which stops at
// the next epoch boundary.
func LoadOrPretrainCtx(ctx context.Context, netPath, topology string, samplesPerClass, epochs int, seed int64) (*dnnmodel.Modeler, error) {
	return LoadOrPretrainOpts(ctx, NetOptions{
		NetPath:         netPath,
		Topology:        topology,
		SamplesPerClass: samplesPerClass,
		Epochs:          epochs,
		Seed:            seed,
	})
}

// LoadOrPretrainOpts is the options form of LoadOrPretrainCtx, adding the
// float32 fast path and the pretrained-network registry. With a model dir, a
// run whose effective pretraining configuration was seen before loads the
// stored network and performs zero training epochs.
func LoadOrPretrainOpts(ctx context.Context, o NetOptions) (*dnnmodel.Modeler, error) {
	if o.NetPath != "" {
		f, err := os.Open(o.NetPath)
		if err != nil {
			return nil, fmt.Errorf("open network: %w", err)
		}
		defer f.Close()
		net, err := nn.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load network %s: %w", o.NetPath, err)
		}
		fmt.Fprintf(os.Stderr, "loaded pretrained network from %s (%d parameters)\n", o.NetPath, net.NumParams())
		return &dnnmodel.Modeler{Net: net, Precision: o.Precision()}, nil
	}
	hidden, err := ParseTopology(o.Topology)
	if err != nil {
		return nil, err
	}
	cfg := dnnmodel.PretrainConfig{
		Hidden:          hidden,
		SamplesPerClass: o.SamplesPerClass,
		Epochs:          o.Epochs,
		Seed:            o.Seed,
		Precision:       o.Precision(),
	}
	if o.ModelDir != "" {
		reg, err := modelregistry.Open(o.ModelDir)
		if err != nil {
			return nil, fmt.Errorf("model dir: %w", err)
		}
		cfg.Registry = reg
		if o.Verbose {
			fmt.Fprintf(os.Stderr, "model registry %s, digest %s\n", o.ModelDir, cfg.RegistryKey().Digest())
		}
	}
	fmt.Fprintf(os.Stderr, "pretraining network (topology %v, %d samples/class, %d epochs, %s)...\n",
		hidden, o.SamplesPerClass, o.Epochs, o.Precision())
	m, stats, err := dnnmodel.PretrainCtx(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("pretrain: %w", err)
	}
	if cfg.Registry != nil && len(stats.EpochLoss) == 0 {
		fmt.Fprintf(os.Stderr, "model registry hit: loaded pretrained network from %s (0 training epochs)\n", o.ModelDir)
	} else {
		fmt.Fprintf(os.Stderr, "pretraining done, final loss %.4f\n", stats.FinalLoss())
	}
	return m, nil
}

// ParseLevels parses a comma-separated list of noise percentages
// ("2,5,10,20") into fractions.
func ParseLevels(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid noise level %q", p)
		}
		out = append(out, v/100)
	}
	return out, nil
}
