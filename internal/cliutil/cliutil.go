// Package cliutil provides the small shared pieces of the command-line
// tools: loading or pretraining classification networks, parsing topology
// flags, and table formatting.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/nn"
)

// ParseTopology parses a -topology flag value: "default", "paper", "tiny",
// or a comma-separated list of hidden-layer sizes such as "256,128,64".
func ParseTopology(s string) ([]int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return dnnmodel.DefaultTopology, nil
	case "paper":
		return dnnmodel.PaperTopology, nil
	case "tiny":
		return dnnmodel.TinyTopology, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid topology %q: each entry must be a positive integer", s)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("invalid topology %q", s)
	}
	return sizes, nil
}

// LoadOrPretrain returns a DNN modeler: loaded from netPath when given,
// otherwise pretrained with the supplied settings (progress goes to stderr,
// keeping stdout clean for results).
func LoadOrPretrain(netPath, topology string, samplesPerClass, epochs int, seed int64) (*dnnmodel.Modeler, error) {
	if netPath != "" {
		f, err := os.Open(netPath)
		if err != nil {
			return nil, fmt.Errorf("open network: %w", err)
		}
		defer f.Close()
		net, err := nn.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load network %s: %w", netPath, err)
		}
		fmt.Fprintf(os.Stderr, "loaded pretrained network from %s (%d parameters)\n", netPath, net.NumParams())
		return &dnnmodel.Modeler{Net: net}, nil
	}
	hidden, err := ParseTopology(topology)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pretraining network (topology %v, %d samples/class, %d epochs)...\n",
		hidden, samplesPerClass, epochs)
	m, stats := dnnmodel.Pretrain(dnnmodel.PretrainConfig{
		Hidden:          hidden,
		SamplesPerClass: samplesPerClass,
		Epochs:          epochs,
		Seed:            seed,
	})
	fmt.Fprintf(os.Stderr, "pretraining done, final loss %.4f\n", stats.FinalLoss())
	return m, nil
}

// ParseLevels parses a comma-separated list of noise percentages
// ("2,5,10,20") into fractions.
func ParseLevels(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid noise level %q", p)
		}
		out = append(out, v/100)
	}
	return out, nil
}
