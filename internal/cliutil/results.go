package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Incremental campaign results. A streaming campaign writes one JSONL line
// per modeled (kernel, metric) entry as it completes, in input order; the
// same file doubles as the checkpoint for -resume, so a long campaign killed
// at hour three restarts at hour three instead of hour zero. Because every
// model report is a pure function of its entry's measurement set, a resumed
// run appends lines byte-identical to the ones an uninterrupted run would
// have written.

// ErrInterrupted marks an entry whose modeling was cut short by cancellation
// (timeout or signal). A ResultWriter returns it instead of writing the
// entry, halting the ordered stream so the results file stays a clean prefix
// of the input — the property the resume path depends on. errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) hold, so
// ExitCode and CampaignExitCode map it to ExitTimeout.
var ErrInterrupted = &interruptedError{}

type interruptedError struct{ cause error }

func (e *interruptedError) Error() string {
	if e.cause == nil {
		return "campaign interrupted"
	}
	return fmt.Sprintf("campaign interrupted: %v", e.cause)
}

// Is makes every interruptedError match ErrInterrupted and its cancellation
// cause, whichever the caller asks about.
func (e *interruptedError) Is(target error) bool {
	if _, ok := target.(*interruptedError); ok {
		return true
	}
	return errors.Is(e.cause, target)
}

func (e *interruptedError) Unwrap() error { return e.cause }

// ResultLine is one campaign result in the incremental JSONL format. All
// fields derive purely from the entry's measurement set, so the line for a
// given entry is byte-identical across runs — the invariant behind
// checkpoint/resume.
type ResultLine struct {
	Kernel string `json:"kernel"`
	Metric string `json:"metric,omitempty"`
	// Model is the selected model function in its canonical string form.
	Model string  `json:"model,omitempty"`
	SMAPE float64 `json:"smape_pct,omitempty"`
	Noise float64 `json:"noise_global,omitempty"`
	// Selected names the winning modeler ("dnn" or "regression").
	Selected string `json:"selected,omitempty"`
	// Fallback records degraded modeling (pretrained/regression fallback).
	// Divergence and degradation are functions of the signature-derived
	// adaptation seed, so the label is stable across runs. The adaptation
	// attempt count is deliberately NOT recorded: it reads 0 on a cache hit
	// and N on a fresh adaptation, which depends on execution history and
	// would break resume byte-identity (perfmodeler -v reports it instead).
	Fallback string `json:"fallback,omitempty"`
	// Error records a failed entry (per-entry failures are results too: a
	// resumed run must not retry a kernel that deterministically fails).
	Error string `json:"error,omitempty"`
	// RequestID is set ONLY by modelerd on kernel-less trailer lines (stream
	// failures) when its access log is enabled, correlating the trailer with
	// the daemon's access-log line. Kernel result lines never carry it —
	// trailers never reach results files, so resume byte-identity holds.
	RequestID string `json:"request_id,omitempty"`
}

// ResultWriter appends ResultLines to a JSONL results/checkpoint stream.
// Lines are written unbuffered (one Write syscall per line through
// json.Encoder), so every completed line is durable the moment WriteResult
// returns.
type ResultWriter struct {
	enc   *json.Encoder
	count int
}

// NewResultWriter starts writing results to w (typically a file opened with
// O_APPEND when resuming).
func NewResultWriter(w io.Writer) *ResultWriter {
	return &ResultWriter{enc: json.NewEncoder(w)}
}

// WriteResult appends one line. entryErr is the entry's modeling error, if
// any: a cancellation error is not a result — the entry would have modeled
// fine in a longer run — so instead of writing it, WriteResult returns
// ErrInterrupted (wrapping entryErr) to halt the stream with the file ending
// on the last genuinely completed entry. Other entry errors are recorded in
// the line's Error field and written normally.
func (w *ResultWriter) WriteResult(line ResultLine, entryErr error) error {
	if entryErr != nil {
		if errors.Is(entryErr, context.Canceled) || errors.Is(entryErr, context.DeadlineExceeded) {
			return &interruptedError{cause: entryErr}
		}
		line.Error = entryErr.Error()
	}
	if err := w.enc.Encode(line); err != nil {
		return fmt.Errorf("write result line %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of lines written.
func (w *ResultWriter) Count() int { return w.count }

// CheckpointKey is the done-set key of one profile entry, matching the
// profile package's duplicate-detection key.
func CheckpointKey(kernel, metric string) string { return kernel + "\x00" + metric }

// ReadCheckpoint parses an existing results file into the set of completed
// entries for -resume. It returns the done-set keyed by CheckpointKey and
// the line count. A malformed line is an error: the checkpoint contract is
// that interrupted runs end cleanly (ResultWriter never writes a torn line
// on cancellation), so corruption means the file is not a checkpoint.
func ReadCheckpoint(r io.Reader) (done map[string]bool, lines int, err error) {
	done = map[string]bool{}
	dec := json.NewDecoder(r)
	for dec.More() {
		var line ResultLine
		if err := dec.Decode(&line); err != nil {
			return nil, lines, fmt.Errorf("checkpoint line %d: %w", lines, err)
		}
		if line.Kernel == "" {
			return nil, lines, fmt.Errorf("checkpoint line %d: no kernel name", lines)
		}
		done[CheckpointKey(line.Kernel, line.Metric)] = true
		lines++
	}
	return done, lines, nil
}

// CampaignExitCode maps a campaign outcome to the shared exit-code
// convention: a cancellation error (including ErrInterrupted) outranks
// everything at ExitTimeout — the missing entries were never tried; any
// other run-level error is ExitFatal; with no run-level error, failed == 0
// is ExitOK, every entry failing is ExitFatal, and a strict subset failing
// is ExitPartialFailure.
func CampaignExitCode(err error, failed, total int) int {
	if err != nil {
		return ExitCode(err)
	}
	switch {
	case failed == 0:
		return ExitOK
	case failed >= total:
		return ExitFatal
	default:
		return ExitPartialFailure
	}
}
