package cliutil

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestResultWriterCheckpointRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewResultWriter(&buf)
	lines := []ResultLine{
		{Kernel: "solver", Metric: "runtime", Model: "2.5 + 0.5 * p^1", SMAPE: 1.25, Noise: 0.05, Selected: "dnn"},
		{Kernel: "io", Metric: "runtime", Model: "1 + log2(p)", Selected: "regression"},
	}
	for _, l := range lines {
		if err := w.WriteResult(l, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteResult(ResultLine{Kernel: "bad", Metric: "runtime"}, errors.New("too few points")); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	done, n, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(done) != 3 {
		t.Fatalf("checkpoint has %d lines, done-set %d", n, len(done))
	}
	for _, k := range []string{"solver", "io", "bad"} {
		if !done[CheckpointKey(k, "runtime")] {
			t.Fatalf("kernel %s missing from done-set", k)
		}
	}
	// A failed entry is a result too (deterministic failures must not be
	// retried on resume), recorded with its error string.
	if !strings.Contains(buf.String(), "too few points") {
		t.Fatal("entry error not recorded in the line")
	}
}

func TestResultWriterInterruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewResultWriter(&buf)
	for _, cause := range []error{context.Canceled, fmt.Errorf("model: %w", context.DeadlineExceeded)} {
		err := w.WriteResult(ResultLine{Kernel: "k", Metric: "runtime"}, cause)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("cause %v: err = %v, want ErrInterrupted", cause, err)
		}
		// The wrapped cause stays visible, so exit-code mapping sees the
		// cancellation.
		if ExitCode(err) != ExitTimeout {
			t.Fatalf("cause %v: ExitCode = %d, want ExitTimeout", cause, ExitCode(err))
		}
	}
	if buf.Len() != 0 || w.Count() != 0 {
		t.Fatal("interrupted entries must never reach the checkpoint file")
	}
}

func TestReadCheckpointRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"torn line": `{"kernel":"a","metric":"runtime"}` + "\n" + `{"kernel":"b",`,
		"no kernel": `{"metric":"runtime"}`,
		"not json":  `kernel,metric`,
	}
	for name, input := range cases {
		if _, _, err := ReadCheckpoint(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted a corrupt checkpoint", name)
		}
	}
	done, n, err := ReadCheckpoint(strings.NewReader(""))
	if err != nil || n != 0 || len(done) != 0 {
		t.Fatalf("empty checkpoint: done=%v n=%d err=%v", done, n, err)
	}
}

func TestCampaignExitCode(t *testing.T) {
	interrupted := &interruptedError{cause: context.Canceled}
	cases := []struct {
		name          string
		err           error
		failed, total int
		want          int
	}{
		{"clean", nil, 0, 10, ExitOK},
		{"empty", nil, 0, 0, ExitOK},
		{"partial", nil, 3, 10, ExitPartialFailure},
		{"total failure", nil, 10, 10, ExitFatal},
		{"timeout outranks partial", context.DeadlineExceeded, 3, 10, ExitTimeout},
		{"canceled", context.Canceled, 0, 10, ExitTimeout},
		{"interrupted checkpoint", interrupted, 2, 10, ExitTimeout},
		{"fatal error", errors.New("boom"), 0, 0, ExitFatal},
	}
	for _, tc := range cases {
		if got := CampaignExitCode(tc.err, tc.failed, tc.total); got != tc.want {
			t.Errorf("%s: CampaignExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}
