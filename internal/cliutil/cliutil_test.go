package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extrapdnn/internal/dnnmodel"
)

func TestParseTopology(t *testing.T) {
	cases := map[string][]int{
		"":        dnnmodel.DefaultTopology,
		"default": dnnmodel.DefaultTopology,
		"paper":   dnnmodel.PaperTopology,
		"tiny":    dnnmodel.TinyTopology,
	}
	for in, want := range cases {
		got, err := ParseTopology(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(got) != len(want) || got[0] != want[0] {
			t.Errorf("ParseTopology(%q) = %v, want %v", in, got, want)
		}
	}
	got, err := ParseTopology("64, 32,16")
	if err != nil || len(got) != 3 || got[0] != 64 || got[2] != 16 {
		t.Fatalf("custom topology = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "a,b", "-5", "64,,32"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) should fail", bad)
		}
	}
}

func TestParseLevels(t *testing.T) {
	got, err := ParseLevels("2, 50,100")
	if err != nil || len(got) != 3 || got[0] != 0.02 || got[2] != 1.0 {
		t.Fatalf("levels = %v, %v", got, err)
	}
	if got, err := ParseLevels(""); err != nil || got != nil {
		t.Fatal("empty levels should give nil")
	}
	if _, err := ParseLevels("2,x"); err == nil {
		t.Fatal("invalid level should fail")
	}
	if _, err := ParseLevels("-3"); err == nil {
		t.Fatal("negative level should fail")
	}
}

func TestLoadOrPretrainRoundTrip(t *testing.T) {
	m, err := LoadOrPretrain("", "tiny", 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Net.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := LoadOrPretrain(path, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Net.NumParams() != m.Net.NumParams() {
		t.Fatal("loaded network differs")
	}
}

func TestLoadOrPretrainErrors(t *testing.T) {
	if _, err := LoadOrPretrain("/nonexistent/net.bin", "", 0, 0, 0); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := LoadOrPretrain("", "bogus-topo", 5, 1, 1); err == nil {
		t.Fatal("bad topology should fail")
	}
}

func TestExitCode(t *testing.T) {
	if ExitCode(nil) != ExitOK {
		t.Fatal("nil error must map to ExitOK")
	}
	if ExitCode(context.DeadlineExceeded) != ExitTimeout {
		t.Fatal("deadline expiry must map to ExitTimeout")
	}
	if ExitCode(fmt.Errorf("wrap: %w", context.Canceled)) != ExitTimeout {
		t.Fatal("wrapped cancellation must map to ExitTimeout")
	}
	if ExitCode(errors.New("boom")) != ExitFatal {
		t.Fatal("plain error must map to ExitFatal")
	}
}

func TestTimeoutContext(t *testing.T) {
	ctx, cancel := TimeoutContext(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout must not set a deadline")
	}
	ctx2, cancel2 := TimeoutContext(time.Hour)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("positive timeout must set a deadline")
	}
}

func TestLoadOrPretrainCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LoadOrPretrainCtx(ctx, "", "tiny", 2, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
