package cliutil

import (
	"context"
	"flag"

	"extrapdnn/internal/core"
	"extrapdnn/internal/dnnmodel"
)

// ModelerFlags is the shared flag family that configures an adaptive modeler
// — network loading/pretraining, domain adaptation, the noise threshold, and
// the adaptation cache. perfmodeler and modelerd register the same names and
// defaults through it, so a daemon started with the flags of a local run
// produces byte-identical models for the same inputs.
type ModelerFlags struct {
	NetPath         string
	Topology        string
	PretrainSamples int
	PretrainEpochs  int
	Float32         bool
	ModelDir        string
	AdaptSamples    int
	AdaptEpochs     int
	AdaptRetries    int
	Threshold       float64
	NoFallback      bool
	AdaptCache      int
	CacheShards     int
	NoiseBucket     float64
	Seed            int64
	Workers         int
	NoSanitize      bool
}

// RegisterModelerFlags registers the shared modeler flag family on the
// process-wide flag set, with the names and defaults perfmodeler has always
// used.
func RegisterModelerFlags() *ModelerFlags {
	f := &ModelerFlags{}
	flag.StringVar(&f.NetPath, "net", "", "pretrained network file (from traingen); pretrains ad hoc when empty")
	flag.StringVar(&f.Topology, "topology", "default", "topology for ad-hoc pretraining")
	flag.IntVar(&f.PretrainSamples, "pretrain-samples", 300, "ad-hoc pretraining samples per class")
	flag.IntVar(&f.PretrainEpochs, "pretrain-epochs", 3, "ad-hoc pretraining epochs")
	flag.BoolVar(&f.Float32, "f32", false, "run DNN training and inference through the float32 SIMD fast path")
	flag.StringVar(&f.ModelDir, "model-dir", "", "pretrained-network registry directory: reuse equal-configuration pretraining results across runs")
	flag.IntVar(&f.AdaptSamples, "adapt-samples", 200, "domain-adaptation samples per class")
	flag.IntVar(&f.AdaptEpochs, "adapt-epochs", 1, "domain-adaptation epochs")
	flag.IntVar(&f.AdaptRetries, "adapt-retries", 0, "divergence retries per adaptation (0 = default 2, negative disables)")
	flag.Float64Var(&f.Threshold, "threshold", core.DefaultNoiseThreshold, "noise level above which the regression modeler is switched off")
	flag.BoolVar(&f.NoFallback, "no-fallback", false, "fail instead of degrading to the pretrained network or regression on DNN failure")
	flag.IntVar(&f.AdaptCache, "adapt-cache", 32, "LRU entries of the domain-adaptation cache (0 disables; results are identical either way)")
	flag.IntVar(&f.CacheShards, "cache-shards", 0, "adaptation-cache lock shards (0 = default 8, 1 = single mutex; results are identical for any value)")
	flag.Float64Var(&f.NoiseBucket, "noise-bucket", 0, "noise-bucket width for the adaptation cache signature (0 = default 2.5% steps, negative disables quantization)")
	flag.Int64Var(&f.Seed, "seed", 1, "random seed")
	flag.IntVar(&f.Workers, "workers", 0, "concurrent modeling workers per profile (0 = GOMAXPROCS); results are identical for any value")
	flag.BoolVar(&f.NoSanitize, "no-sanitize", false, "reject measurement sets with bad points instead of repairing them")
	return f
}

// NetOptions maps the flags onto the network loading/pretraining options.
func (f *ModelerFlags) NetOptions(verbose bool) NetOptions {
	return NetOptions{
		NetPath:         f.NetPath,
		Topology:        f.Topology,
		SamplesPerClass: f.PretrainSamples,
		Epochs:          f.PretrainEpochs,
		Seed:            f.Seed,
		Float32:         f.Float32,
		ModelDir:        f.ModelDir,
		Verbose:         verbose,
	}
}

// CoreConfig maps the flags onto the adaptive-modeler configuration.
func (f *ModelerFlags) CoreConfig(disableDNN bool) core.Config {
	return core.Config{
		NoiseThreshold: f.Threshold,
		Adapt: dnnmodel.AdaptConfig{
			SamplesPerClass: f.AdaptSamples,
			Epochs:          f.AdaptEpochs,
			Precision:       f.NetOptions(false).Precision(),
		},
		DisableDNN:       disableDNN,
		Seed:             f.Seed,
		AdaptCacheSize:   f.AdaptCache,
		AdaptCacheShards: f.CacheShards,
		NoiseBucketWidth: f.NoiseBucket,
		AdaptRetries:     f.AdaptRetries,
		DisableFallback:  f.NoFallback,
	}
}

// NewModeler loads or pretrains the network (skipped with disableDNN) and
// wraps it in a core.Modeler configured from the flags — the shared modeler
// construction of perfmodeler and modelerd.
func (f *ModelerFlags) NewModeler(ctx context.Context, disableDNN, verbose bool) (*core.Modeler, error) {
	var pretrained *dnnmodel.Modeler
	if !disableDNN {
		var err error
		pretrained, err = LoadOrPretrainOpts(ctx, f.NetOptions(verbose))
		if err != nil {
			return nil, err
		}
	}
	return core.New(pretrained, f.CoreConfig(disableDNN))
}
