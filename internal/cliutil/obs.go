package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"extrapdnn/internal/adaptcache"
	"extrapdnn/internal/obs"
)

// ObsFlags is the shared observability flag trio of the CLI tools (see
// docs/OBSERVABILITY.md). Register with RegisterObsFlags, activate with Setup.
type ObsFlags struct {
	// MetricsAddr serves /metrics (Prometheus text) and /metrics.json on this
	// address while the tool runs; empty disables the listener.
	MetricsAddr string
	// TracePath writes a JSONL span trace of the run to this file.
	TracePath string
	// TraceSample keeps one trace in every N (<= 1 keeps all). The decision is
	// a pure function of the trace ID, so a client and a daemon configured with
	// the same rate agree on which traces to record across processes.
	TraceSample int
	// Pprof additionally serves net/http/pprof under /debug/pprof/ on
	// MetricsAddr.
	Pprof bool
}

// RegisterObsFlags registers the -metrics-addr, -trace and -pprof flags on
// the process-wide flag set and returns the struct they fill.
func RegisterObsFlags() *ObsFlags {
	f := &ObsFlags{}
	flag.StringVar(&f.MetricsAddr, "metrics-addr", "",
		`serve Prometheus metrics on this address while running, e.g. "localhost:9090" (/metrics, /metrics.json; empty = off)`)
	flag.StringVar(&f.TracePath, "trace", "",
		"write a JSONL span trace of the run to this file (empty = off)")
	flag.IntVar(&f.TraceSample, "trace-sample", 1,
		"with -trace: keep one trace in every N (deterministic by trace ID; 1 = keep all)")
	flag.BoolVar(&f.Pprof, "pprof", false,
		"with -metrics-addr: also serve net/http/pprof under /debug/pprof/")
	return f
}

// Setup activates the observability the flags (plus -v) ask for: it enables
// metric collection, installs a tracer — file-backed for -trace, collect-only
// for a bare -v so the digest has data — and starts the metrics listener.
// With everything off it is a no-op returning a no-op shutdown. The returned
// shutdown is idempotent and must run before process exit (it uninstalls the
// tracer and flushes the trace file); call it explicitly before os.Exit paths
// that bypass defers.
func (f *ObsFlags) Setup(tool string, verbose bool) (shutdown func(), err error) {
	if f.Pprof && f.MetricsAddr == "" {
		return nil, fmt.Errorf("-pprof requires -metrics-addr")
	}
	if f.MetricsAddr == "" && f.TracePath == "" && !verbose {
		return func() {}, nil
	}
	obs.EnableMetrics()
	var tracer *obs.Tracer
	if f.TracePath != "" {
		file, err := os.Create(f.TracePath)
		if err != nil {
			return nil, fmt.Errorf("create trace file: %w", err)
		}
		tracer = obs.NewTracer(file)
	} else {
		tracer = obs.NewTracer(nil) // collect-only: span stats for the digest
	}
	tracer.SetSampleEvery(f.TraceSample)
	obs.SetTracer(tracer)
	if f.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler())
		mux.Handle("/metrics.json", obs.JSONHandler())
		note := ""
		if f.Pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			note = ", pprof: /debug/pprof/"
		}
		ln, err := net.Listen("tcp", f.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: serving metrics on http://%s/metrics (json: /metrics.json%s)\n",
			tool, ln.Addr(), note)
		go http.Serve(ln, mux)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			obs.SetTracer(nil)
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: closing trace: %v\n", tool, err)
			} else if f.TracePath != "" {
				fmt.Fprintf(os.Stderr, "%s: span trace written to %s\n", tool, f.TracePath)
			}
		})
	}, nil
}

// PrintCacheStats reports how many Model calls reused a cached adaptation
// versus paid an adaptation-training run — the one shared rendering of
// adaptcache.Stats across the CLI tools.
func PrintCacheStats(w io.Writer, s adaptcache.Stats) {
	fmt.Fprintf(w, "adaptation cache:  %d hits, %d misses (adaptations trained), %d evictions, %d entries, %.1f KiB retained\n",
		s.Hits, s.Misses, s.Evictions, s.Entries, float64(s.Bytes)/1024)
}

// PrintRunSummary prints the end-of-run telemetry digest (-v): modeling and
// resilience outcomes, cache effectiveness, training volume, worker-pool
// utilization, span totals and the slowest kernels by wall time. Everything
// comes from the obs registry and the installed tracer, so it reflects
// exactly what a scrape of /metrics would have seen.
func PrintRunSummary(w io.Writer) {
	snap := obs.Default().Snapshot()
	c := snap.Counter
	fmt.Fprintln(w, "--- run telemetry ---")
	fmt.Fprintf(w, "modeling runs:     %d ok, %d failed (selected: dnn %d, regression %d)\n",
		c("extrapdnn_core_models_total"), c("extrapdnn_core_model_errors_total"),
		c(`extrapdnn_core_selected_total{modeler="dnn"}`), c(`extrapdnn_core_selected_total{modeler="regression"}`))
	fmt.Fprintf(w, "resilience:        first_try %d, retried %d, cached %d, no_adapt %d, fallback pretrained %d / regression %d\n",
		c(`extrapdnn_core_resilience_total{outcome="first_try"}`),
		c(`extrapdnn_core_resilience_total{outcome="retried"}`),
		c(`extrapdnn_core_resilience_total{outcome="cached"}`),
		c(`extrapdnn_core_resilience_total{outcome="no_adapt"}`),
		c(`extrapdnn_core_resilience_total{outcome="fallback_pretrained"}`),
		c(`extrapdnn_core_resilience_total{outcome="fallback_regression"}`))
	hits := c("extrapdnn_adaptcache_hits_total")
	misses := c("extrapdnn_adaptcache_misses_total")
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses) * 100
	}
	fmt.Fprintf(w, "adaptation cache:  %d hits / %d misses (hit rate %.1f%%), %d singleflight waits, %d evictions\n",
		hits, misses, rate,
		c("extrapdnn_adaptcache_singleflight_waits_total"), c("extrapdnn_adaptcache_evictions_total"))
	fmt.Fprintf(w, "adapt retries:     %d divergence-recovery attempts\n",
		c("extrapdnn_core_adapt_retries_total"))
	fmt.Fprintf(w, "training:          %d runs, %d epochs, %d batches, %d divergence aborts\n",
		c("extrapdnn_nn_train_runs_total"), c("extrapdnn_nn_train_epochs_total"),
		c("extrapdnn_nn_train_batches_total"), c("extrapdnn_nn_train_divergence_total"))
	fmt.Fprintf(w, "precision:         %d float64 runs, %d float32 runs\n",
		c(`extrapdnn_nn_train_precision_total{precision="float64"}`),
		c(`extrapdnn_nn_train_precision_total{precision="float32"}`))
	if regHits, regMisses := c("extrapdnn_modelregistry_hits_total"), c("extrapdnn_modelregistry_misses_total"); regHits+regMisses > 0 {
		fmt.Fprintf(w, "model registry:    %d hits (pretraining skipped), %d misses, %d stores, %d bad blobs\n",
			regHits, regMisses,
			c("extrapdnn_modelregistry_stores_total"), c("extrapdnn_modelregistry_bad_blobs_total"))
	}
	fmt.Fprintf(w, "parallel:          %d items, worker busy %v, dispatch wait %v\n",
		c("extrapdnn_parallel_items_total"),
		time.Duration(c("extrapdnn_parallel_worker_busy_ns_total")).Round(time.Millisecond),
		time.Duration(c("extrapdnn_parallel_dispatch_wait_ns_total")).Round(time.Millisecond))
	ts := obs.CurrentTraceStats()
	fmt.Fprintf(w, "spans:             %d recorded\n", ts.Spans)
	if len(ts.Slowest) > 0 {
		fmt.Fprintln(w, "slowest kernels:")
		for i, s := range ts.Slowest {
			if i >= 5 {
				break
			}
			fmt.Fprintf(w, "  %d. %-22s %v\n", i+1, s.Kernel, s.Dur.Round(time.Millisecond))
		}
	}
}
