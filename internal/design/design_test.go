package design

import (
	"math"
	"testing"

	"extrapdnn/internal/measurement"
)

var vals2 = [][]float64{
	{16, 32, 64, 128, 256},
	{8192, 16384, 32768, 65536, 131072},
}

func TestFullGrid(t *testing.T) {
	d := FullGrid(vals2, 5)
	if len(d.Points) != 25 {
		t.Fatalf("grid has %d points", len(d.Points))
	}
	if d.NumExperiments() != 125 {
		t.Fatalf("experiments = %d", d.NumExperiments())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossingLines(t *testing.T) {
	d, err := CrossingLines(vals2, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 5 - 1 shared corner + 1 extra = 10.
	if len(d.Points) != 10 {
		t.Fatalf("crossing lines have %d points, want 10", len(d.Points))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Extra point must be off both lines.
	extra := measurement.Point{32, 16384}
	found := false
	for _, p := range d.Points {
		if p.Equal(extra) {
			found = true
		}
	}
	if !found {
		t.Fatalf("extra point %v missing from %v", extra, d.Points)
	}
}

func TestCrossingLinesWithoutExtra(t *testing.T) {
	d, err := CrossingLines(vals2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 9 {
		t.Fatalf("%d points, want 9 (the paper's FASTEST/RELeARN layout)", len(d.Points))
	}
}

func TestCrossingLinesErrors(t *testing.T) {
	if _, err := CrossingLines(nil, 5, false); err == nil {
		t.Fatal("no parameters should fail")
	}
	if _, err := CrossingLines([][]float64{{1, 2}}, 5, false); err == nil {
		t.Fatal("too few values should fail")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Design{}).Validate(); err == nil {
		t.Fatal("empty design should fail")
	}
	if err := (Design{Points: []measurement.Point{{1}}, Reps: 0}).Validate(); err == nil {
		t.Fatal("zero reps should fail")
	}
	short := Design{Points: []measurement.Point{{1}, {2}, {3}}, Reps: 1}
	if err := short.Validate(); err == nil {
		t.Fatal("3-point line should fail")
	}
	mixed := Design{Points: []measurement.Point{{1}, {2, 3}}, Reps: 1}
	if err := mixed.Validate(); err == nil {
		t.Fatal("mixed arity should fail")
	}
}

func TestCostModel(t *testing.T) {
	d, err := CrossingLines(vals2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	grid := FullGrid(vals2, 5)

	cm := CostModel{ProcessParam: 0}
	lineCost := cm.CoreHours(d)
	gridCost := cm.CoreHours(grid)
	if lineCost >= gridCost {
		t.Fatalf("crossing lines (%v core-h) should be cheaper than the grid (%v core-h)",
			lineCost, gridCost)
	}
	// Manual check: lines at x1 minimum except the x1-line itself.
	want := 5.0 * (16 + 32 + 64 + 128 + 256 + 4*16)
	if math.Abs(lineCost-want) > 1e-9 {
		t.Fatalf("line cost = %v, want %v", lineCost, want)
	}
}

func TestCostModelCustomHours(t *testing.T) {
	d := FullGrid([][]float64{{1, 2, 3, 4, 5}}, 1)
	cm := CostModel{ProcessParam: -1, HoursPerRun: func(p measurement.Point) float64 { return p[0] }}
	if got := cm.CoreHours(d); got != 15 {
		t.Fatalf("core hours = %v, want 15", got)
	}
}
