// Package design generates experiment designs for empirical performance
// modeling: which measurement points to run, given the modeling
// requirements Extra-P imposes (at least five values per parameter along a
// line where all other parameters are fixed, plus at least one point
// outside the lines to separate additive from multiplicative parameter
// interaction — Section III of the paper). It also estimates campaign cost
// in core-hours so designs can be compared, in the spirit of the
// cost-effective sampling strategies the paper builds on.
package design

import (
	"fmt"
	"sort"

	"extrapdnn/internal/measurement"
)

// Design is a set of measurement points to run, each with the planned
// repetition count.
type Design struct {
	Points []measurement.Point
	Reps   int
}

// NumExperiments returns the total number of application runs.
func (d Design) NumExperiments() int { return len(d.Points) * d.Reps }

// Validate checks the design satisfies the modeling requirements: at least
// MinPointsPerParameter distinct values on some line per parameter.
func (d Design) Validate() error {
	if len(d.Points) == 0 {
		return fmt.Errorf("design: no points")
	}
	if d.Reps < 1 {
		return fmt.Errorf("design: repetitions must be >= 1")
	}
	m := len(d.Points[0])
	for _, p := range d.Points {
		if len(p) != m {
			return fmt.Errorf("design: inconsistent parameter counts")
		}
	}
	for l := 0; l < m; l++ {
		if longestLine(d.Points, l) < measurement.MinPointsPerParameter {
			return fmt.Errorf("design: parameter %d has no %d-point line",
				l, measurement.MinPointsPerParameter)
		}
	}
	return nil
}

// longestLine returns the length of the longest single-parameter line for
// parameter l.
func longestLine(points []measurement.Point, l int) int {
	groups := map[string]map[float64]bool{}
	for _, p := range points {
		key := ""
		for k, v := range p {
			if k == l {
				continue
			}
			key += fmt.Sprintf("%g,", v)
		}
		if groups[key] == nil {
			groups[key] = map[float64]bool{}
		}
		groups[key][p[l]] = true
	}
	best := 0
	for _, g := range groups {
		if len(g) > best {
			best = len(g)
		}
	}
	return best
}

// FullGrid designs the cartesian product of all parameter values — the
// layout of the paper's Kripke campaign and synthetic evaluation. Cost grows
// with the product of the value counts.
func FullGrid(values [][]float64, reps int) Design {
	pts := []measurement.Point{{}}
	for _, vs := range values {
		var next []measurement.Point
		for _, p := range pts {
			for _, v := range vs {
				np := make(measurement.Point, len(p)+1)
				copy(np, p)
				np[len(p)] = v
				next = append(next, np)
			}
		}
		pts = next
	}
	return Design{Points: pts, Reps: reps}
}

// CrossingLines designs the cheapest valid layout: one line per parameter,
// each at the *lowest* values of the other parameters (the cheapest
// configurations), overlapping at the common corner, plus one extra point
// off the lines — at the second-lowest value of every parameter — so the
// modeler can distinguish additive from multiplicative interaction. This is
// the layout of the paper's FASTEST and RELeARN campaigns (which omit the
// extra point) extended per Section III's requirement.
func CrossingLines(values [][]float64, reps int, withExtraPoint bool) (Design, error) {
	m := len(values)
	if m == 0 {
		return Design{}, fmt.Errorf("design: no parameters")
	}
	for l, vs := range values {
		if len(vs) < measurement.MinPointsPerParameter {
			return Design{}, fmt.Errorf("design: parameter %d has only %d values, need %d",
				l, len(vs), measurement.MinPointsPerParameter)
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		values[l] = sorted
	}
	seen := map[string]bool{}
	var pts []measurement.Point
	add := func(p measurement.Point) {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			pts = append(pts, p)
		}
	}
	// One line per parameter at the minimum of the others.
	for l := 0; l < m; l++ {
		for _, v := range values[l] {
			p := make(measurement.Point, m)
			for k := 0; k < m; k++ {
				p[k] = values[k][0]
			}
			p[l] = v
			add(p)
		}
	}
	if withExtraPoint && m > 1 {
		p := make(measurement.Point, m)
		for k := 0; k < m; k++ {
			p[k] = values[k][1]
		}
		add(p)
	}
	return Design{Points: pts, Reps: reps}, nil
}

// CostModel estimates the cost of running a design, in core-hours: the
// process-count parameter times the estimated per-run wall-clock hours.
type CostModel struct {
	// ProcessParam is the index of the parameter holding the process count
	// (-1 when runs are serial).
	ProcessParam int
	// HoursPerRun estimates the wall-clock hours of one run at a point; nil
	// means a constant 1h.
	HoursPerRun func(p measurement.Point) float64
}

// CoreHours returns the estimated total core-hours of the design.
func (c CostModel) CoreHours(d Design) float64 {
	total := 0.0
	for _, p := range d.Points {
		procs := 1.0
		if c.ProcessParam >= 0 && c.ProcessParam < len(p) {
			procs = p[c.ProcessParam]
		}
		hours := 1.0
		if c.HoursPerRun != nil {
			hours = c.HoursPerRun(p)
		}
		total += procs * hours * float64(d.Reps)
	}
	return total
}
