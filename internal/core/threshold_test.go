package core

import (
	"math"
	"testing"
)

// TestNoiseThresholdSemantics pins the documented Config.NoiseThreshold
// contract end to end: zero means DefaultNoiseThreshold, negative disables
// the regression modeler entirely, and the boundary case — estimated global
// noise exactly equal to the threshold — still runs regression (the docs say
// regression is switched off when the noise *exceeds* the threshold).
func TestNoiseThresholdSemantics(t *testing.T) {
	if got := (Config{}).threshold(); got != DefaultNoiseThreshold {
		t.Fatalf("zero threshold = %v, want DefaultNoiseThreshold %v", got, DefaultNoiseThreshold)
	}
	if got := (Config{NoiseThreshold: 0.07}).threshold(); got != 0.07 {
		t.Fatalf("explicit threshold = %v, want 0.07", got)
	}
	if got := (Config{NoiseThreshold: -0.5}).threshold(); got >= 0 {
		t.Fatalf("negative threshold = %v, must stay negative (regression disabled)", got)
	}

	// Learn the exact estimated noise of a moderately noisy set, then model
	// with the threshold pinned exactly at that estimate and just below it.
	set := noisySetSeed(71, 0.3)
	probe, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	global := rep.Noise.Global
	if global <= 0 {
		t.Fatalf("test set estimated noise %v, need > 0 for the boundary probe", global)
	}

	atBoundary, err := New(testPretrained(), Config{
		NoiseThreshold: global, Adapt: quietAdapt, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	repAt, err := atBoundary.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if !repAt.UsedRegression {
		t.Fatalf("noise %v exactly at threshold must still run regression", global)
	}

	justBelow, err := New(testPretrained(), Config{
		NoiseThreshold: math.Nextafter(global, 0), Adapt: quietAdapt, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	repBelow, err := justBelow.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if repBelow.UsedRegression {
		t.Fatalf("noise %v just above threshold must switch regression off", global)
	}

	negative, err := New(testPretrained(), Config{
		NoiseThreshold: -1, Adapt: quietAdapt, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	repNeg, err := negative.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if repNeg.UsedRegression {
		t.Fatal("negative threshold must disable regression for any noise level")
	}
	if !repNeg.UsedDNN {
		t.Fatal("DNN must still run with regression disabled")
	}
}
