package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"extrapdnn/internal/adaptcache"
	"extrapdnn/internal/measurement"
)

// scaledSet returns a copy of set with every measured value multiplied by
// factor. Scaling leaves all relative deviations — and therefore the noise
// analysis, the selected lines and the task signature — unchanged, so the
// copy models a different kernel of the same application profile: same
// experiment layout and noise band, different magnitude.
func scaledSet(set *measurement.Set, factor float64) *measurement.Set {
	out := &measurement.Set{Metric: set.Metric, ParamNames: set.ParamNames}
	for _, d := range set.Data {
		vals := make([]float64, len(d.Values))
		for i, v := range d.Values {
			vals[i] = v * factor
		}
		out.Data = append(out.Data, measurement.Measurement{Point: d.Point, Values: vals})
	}
	return out
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestTaskSignatureScaleInvariant(t *testing.T) {
	set := noisySetSeed(31, 0.3)
	scaled := scaledSet(set, 137.5)
	a, err := TaskSignature(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TaskSignature(scaled, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("scaling all values must not change the task signature")
	}
	// A different layout must not alias.
	other := &measurement.Set{}
	for _, d := range set.Data {
		pt := measurement.Point{d.Point[0] * 2}
		other.Data = append(other.Data, measurement.Measurement{Point: pt, Values: d.Values})
	}
	c, err := TaskSignature(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different layouts must have different signatures")
	}
}

func noisySetSeed(seed int64, level float64) *measurement.Set {
	rng := rand.New(rand.NewSource(seed))
	return noisySet(rng, level, func(x float64) float64 { return 5 + 2*x })
}

// TestAdaptCacheHitBitIdentical pins the cache soundness contract: a Model
// call served by a cache hit must produce the bit-identical report that a
// fresh adaptation (cache disabled) produces for the same set.
func TestAdaptCacheHitBitIdentical(t *testing.T) {
	base := noisySetSeed(41, 0.3)
	scaled := scaledSet(base, 3.25) // equal signature, different kernel

	cached, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 42, AdaptCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Model(base); err != nil { // warm the cache
		t.Fatal(err)
	}
	hit, err := cached.Model(scaled) // served by the cached adaptation
	if err != nil {
		t.Fatal(err)
	}
	s := cached.CacheStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("expected 1 miss + 1 hit, got %+v", s)
	}
	if s.Bytes <= 0 || s.Entries != 1 {
		t.Fatalf("resident entry not accounted: %+v", s)
	}

	uncached, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := uncached.Model(scaled) // pays its own adaptation
	if err != nil {
		t.Fatal(err)
	}
	if uncached.CacheStats() != (adaptcache.Stats{}) {
		t.Fatal("zero cache size must disable caching entirely")
	}

	if got, want := hit.Model.Model.String(), fresh.Model.Model.String(); got != want {
		t.Fatalf("cached model %q != fresh model %q", got, want)
	}
	if !sameBits(hit.Model.SMAPE, fresh.Model.SMAPE) {
		t.Fatalf("cached SMAPE %v != fresh SMAPE %v", hit.Model.SMAPE, fresh.Model.SMAPE)
	}
	if hit.SelectedDNN != fresh.SelectedDNN || hit.UsedRegression != fresh.UsedRegression {
		t.Fatalf("selection diverged: cached %+v vs fresh %+v", hit, fresh)
	}
	if hit.DNN != nil && fresh.DNN != nil && !sameBits(hit.DNN.SMAPE, fresh.DNN.SMAPE) {
		t.Fatalf("DNN SMAPE diverged: %v vs %v", hit.DNN.SMAPE, fresh.DNN.SMAPE)
	}
}

// TestConcurrentModelSharedCache exercises the single-flight path: many
// goroutines model equal-signature sets on one modeler (run under -race via
// scripts/check.sh); every report must match the serial result and the
// adaptation must run exactly once.
func TestConcurrentModelSharedCache(t *testing.T) {
	base := noisySetSeed(51, 0.3)
	const kernels = 8
	sets := make([]*measurement.Set, kernels)
	for i := range sets {
		sets[i] = scaledSet(base, float64(i+1))
	}

	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 7, AdaptCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([]Report, kernels)
	errs := make([]error, kernels)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = m.Model(sets[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("kernel %d: %v", i, err)
		}
	}
	s := m.CacheStats()
	if s.Misses != 1 || s.Hits != kernels-1 {
		t.Fatalf("want 1 adaptation for %d kernels, got %+v", kernels, s)
	}

	serial, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		want, err := serial.Model(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := reports[i]; got.Model.Model.String() != want.Model.Model.String() ||
			!sameBits(got.Model.SMAPE, want.Model.SMAPE) {
			t.Fatalf("kernel %d: concurrent cached report diverged from serial uncached", i)
		}
	}
}

func TestQuantizeNoise(t *testing.T) {
	cases := []struct {
		v, width, want float64
	}{
		{0.037, 0.025, 0.025},  // rounds down to the nearer edge
		{0.04, 0.025, 0.05},    // rounds up
		{0.0, 0.025, 0.0},      // exact edge
		{0.9999, 0.025, 1.0},   // clamped top bucket
		{-0.001, 0.025, 0.0},   // clamped at zero
		{0.0371, -1, 0.0371},   // negative width disables quantization
		{0.0371, 0, 0.0371},    // zero width disables (callers pass effective width)
		{1.2, 0.025, 1.0},      // clamped above one
		{0.0125, 0.025, 0.025}, // ties round half away from zero (math.Round)
	}
	for _, c := range cases {
		if got := quantizeNoise(c.v, c.width); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantizeNoise(%v, %v) = %v, want %v", c.v, c.width, got, c.want)
		}
	}
}

func TestConfigBucketWidth(t *testing.T) {
	if (Config{}).bucketWidth() != DefaultNoiseBucketWidth {
		t.Fatal("zero width must default")
	}
	if (Config{NoiseBucketWidth: 0.1}).bucketWidth() != 0.1 {
		t.Fatal("explicit width ignored")
	}
	if (Config{NoiseBucketWidth: -1}).bucketWidth() != -1 {
		t.Fatal("negative width must pass through (disables quantization)")
	}
}

// TestNoiseBucketMergesNearbyEstimates verifies the quantization trade-off:
// two sets whose raw noise estimates differ by less than the bucket width can
// share a signature, while disabling quantization separates them.
func TestNoiseBucketMergesNearbyEstimates(t *testing.T) {
	base := noisySetSeed(61, 0.3)
	// Perturb one repetition slightly: the rrd estimate moves a little, the
	// bucket (2.5% wide) usually absorbs it.
	perturbed := scaledSet(base, 1)
	perturbed.Data[0].Values[0] *= 1.0001
	a, err := TaskSignature(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TaskSignature(perturbed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Skip("perturbation crossed a bucket edge for this draw")
	}
	aRaw, err := TaskSignature(base, -1)
	if err != nil {
		t.Fatal(err)
	}
	bRaw, err := TaskSignature(perturbed, -1)
	if err != nil {
		t.Fatal(err)
	}
	if aRaw == bRaw {
		t.Fatal("unquantized signatures must see the perturbed estimate")
	}
}
