// Package core implements the paper's primary contribution: the adaptive
// performance modeler (Section IV-A). Given a measurement set it
//
//  1. estimates the noise level with the range-of-relative-deviation
//     heuristic;
//  2. extracts the task properties (parameter-value sets, measurement-point
//     layout, repetition count);
//  3. retrains the pretrained DNN on synthetic data mirroring those
//     properties (domain adaptation);
//  4. models with the DNN — and, when the estimated noise is below the
//     switching threshold, additionally with the classic regression
//     modeler;
//  5. returns the model with the smaller cross-validated SMAPE.
//
// Above the threshold the regression modeler is switched off entirely
// because its tight in-sample fit of noisy data destroys extrapolation
// accuracy, while the DNN's class prior keeps predictions stable.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/measurement"
	"extrapdnn/internal/noise"
	"extrapdnn/internal/regression"
)

// DefaultNoiseThreshold is the estimated noise level (fraction) above which
// the regression modeler is switched off. The synthetic evaluation
// (cmd/evalsynth) locates the accuracy crossover of the two modelers in the
// 10–20% band, matching the paper's analysis.
const DefaultNoiseThreshold = 0.20

// Config tunes the adaptive modeler.
type Config struct {
	// NoiseThreshold switches the regression modeler off when the estimated
	// noise level exceeds it. Zero means DefaultNoiseThreshold; a negative
	// value disables the regression modeler entirely.
	NoiseThreshold float64
	// Adapt configures the per-task domain adaptation.
	Adapt dnnmodel.AdaptConfig
	// DisableAdaptation skips the per-task retraining and uses the
	// pretrained network as-is (for ablation).
	DisableAdaptation bool
	// DisableDNN turns the adaptive modeler into a plain regression modeler
	// (for ablation and for the paper's baseline column).
	DisableDNN bool
	// TopK bounds the hypotheses per parameter (default 3).
	TopK int
	// Seed makes the synthetic adaptation data deterministic.
	Seed int64
}

func (c Config) threshold() float64 {
	if c.NoiseThreshold == 0 {
		return DefaultNoiseThreshold
	}
	return c.NoiseThreshold
}

// Modeler is the adaptive performance modeler. It is safe for concurrent use
// and Model is a pure function of its input: the adaptation random stream is
// derived from the measurement set's content and the configured seed, so the
// same set always produces the same model — independent of call order,
// worker count or interleaving with other Model calls.
type Modeler struct {
	pretrained *dnnmodel.Modeler
	cfg        Config
}

// New builds an adaptive modeler around a pretrained DNN modeler. The
// pretrained network is never mutated; domain adaptation always works on a
// clone. pretrained may be nil only when cfg.DisableDNN is set.
func New(pretrained *dnnmodel.Modeler, cfg Config) (*Modeler, error) {
	if pretrained == nil && !cfg.DisableDNN {
		return nil, fmt.Errorf("core: a pretrained DNN modeler is required unless DisableDNN is set")
	}
	if cfg.TopK > 0 && pretrained != nil {
		pretrained = &dnnmodel.Modeler{Net: pretrained.Net, TopK: cfg.TopK}
	}
	return &Modeler{pretrained: pretrained, cfg: cfg}, nil
}

// Report is the complete outcome of one adaptive modeling run.
type Report struct {
	// Model is the selected performance model and SMAPE its cross-validated
	// score.
	Model regression.Result
	// Noise is the noise analysis of the input measurements.
	Noise noise.Analysis
	// UsedRegression and UsedDNN record which modelers ran.
	UsedRegression bool
	UsedDNN        bool
	// SelectedDNN reports whether the final model came from the DNN modeler.
	SelectedDNN bool
	// Regression and DNN hold the individual results when the respective
	// modeler ran.
	Regression *regression.Result
	DNN        *regression.Result
	// Durations breaks down where the modeling time went.
	Durations Durations
}

// Durations breaks the modeling time down (Fig. 6 of the paper).
type Durations struct {
	Adapt      time.Duration // domain adaptation (DNN retraining)
	DNN        time.Duration // DNN classification + hypothesis fitting
	Regression time.Duration // regression search
	Total      time.Duration
}

// Model runs the adaptive modeling process on a measurement set.
func (m *Modeler) Model(set *measurement.Set) (Report, error) {
	start := time.Now()
	var rep Report
	if err := set.Validate(); err != nil {
		return rep, err
	}

	// Step 1: noise estimation.
	rep.Noise = noise.Analyze(set)

	// Step 2: task properties for domain adaptation.
	lines, err := regression.SelectLines(set)
	if err != nil {
		return rep, err
	}
	// The adaptation noise range is clamped at 100%: beyond that level the
	// synthetic labels are essentially random and retraining on them would
	// degrade the classifier (the paper pretrains on n ∈ [0, 100%]).
	noiseMax := rep.Noise.Max
	if noiseMax > 1 {
		noiseMax = 1
	}
	noiseMin := rep.Noise.Min
	if noiseMin > noiseMax {
		noiseMin = noiseMax
	}
	// Per-point noise levels in the adaptation data mirror real campaigns,
	// whose run-to-run variability differs between configurations.
	task := dnnmodel.TaskInfo{
		Reps:          set.Repetitions(),
		NoiseMin:      noiseMin,
		NoiseMax:      noiseMax,
		PerPointNoise: true,
	}
	for _, line := range lines {
		task.ParamValues = append(task.ParamValues, line.Xs)
	}

	useRegression := m.cfg.DisableDNN || rep.Noise.Global <= m.threshold()
	useDNN := !m.cfg.DisableDNN

	// Steps 3 and 4: domain adaptation and DNN modeling.
	var dnnRes *regression.Result
	if useDNN {
		rng := m.taskRng(set)
		adaptStart := time.Now()
		modeler := m.pretrained
		if !m.cfg.DisableAdaptation {
			modeler = m.pretrained.DomainAdapt(rng, task, m.cfg.Adapt)
		}
		rep.Durations.Adapt = time.Since(adaptStart)
		dnnStart := time.Now()
		res, err := modeler.Model(set)
		rep.Durations.DNN = time.Since(dnnStart)
		if err != nil {
			return rep, fmt.Errorf("core: DNN modeler: %w", err)
		}
		dnnRes = &res
		rep.UsedDNN = true
		rep.DNN = dnnRes
	}

	// Regression modeling (only below the noise threshold).
	var regRes *regression.Result
	if useRegression {
		regStart := time.Now()
		res, err := regression.Model(set, regression.Options{TopK: m.cfg.TopK})
		rep.Durations.Regression = time.Since(regStart)
		if err != nil {
			if dnnRes == nil {
				return rep, fmt.Errorf("core: regression modeler: %w", err)
			}
		} else {
			regRes = &res
			rep.UsedRegression = true
			rep.Regression = regRes
		}
	}

	// Step 5: select the best model by cross-validated SMAPE.
	switch {
	case dnnRes != nil && regRes != nil:
		if dnnRes.SMAPE <= regRes.SMAPE {
			rep.Model, rep.SelectedDNN = *dnnRes, true
		} else {
			rep.Model = *regRes
		}
	case dnnRes != nil:
		rep.Model, rep.SelectedDNN = *dnnRes, true
	case regRes != nil:
		rep.Model = *regRes
	default:
		return rep, fmt.Errorf("core: no modeler produced a result")
	}
	rep.Durations.Total = time.Since(start)
	return rep, nil
}

// threshold returns the effective switching threshold.
func (m *Modeler) threshold() float64 {
	t := m.cfg.threshold()
	if t < 0 {
		return -1 // regression never runs
	}
	return t
}

// taskRng returns the deterministic random stream for one modeling task,
// seeded from a content hash of the measurement set mixed with the configured
// seed. Deriving the stream from the task instead of a call counter makes
// Model a pure function, which is what lets the profile pipeline run tasks in
// parallel while staying bit-identical to a serial run.
func (m *Modeler) taskRng(set *measurement.Set) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	writeF64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(set.Metric))
	for _, d := range set.Data {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(d.Point)))
		h.Write(buf[:])
		for _, c := range d.Point {
			writeF64(c)
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(len(d.Values)))
		h.Write(buf[:])
		for _, v := range d.Values {
			writeF64(v)
		}
	}
	seed := int64(h.Sum64()) ^ (m.cfg.Seed * 1_000_003)
	return rand.New(rand.NewSource(seed))
}
