// Package core implements the paper's primary contribution: the adaptive
// performance modeler (Section IV-A). Given a measurement set it
//
//  1. estimates the noise level with the range-of-relative-deviation
//     heuristic;
//  2. extracts the task properties (parameter-value sets, measurement-point
//     layout, repetition count);
//  3. retrains the pretrained DNN on synthetic data mirroring those
//     properties (domain adaptation);
//  4. models with the DNN — and, when the estimated noise is below the
//     switching threshold, additionally with the classic regression
//     modeler;
//  5. returns the model with the smaller cross-validated SMAPE.
//
// Above the threshold the regression modeler is switched off entirely
// because its tight in-sample fit of noisy data destroys extrapolation
// accuracy, while the DNN's class prior keeps predictions stable.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"extrapdnn/internal/adaptcache"
	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/faultinject"
	"extrapdnn/internal/measurement"
	"extrapdnn/internal/nn"
	"extrapdnn/internal/noise"
	"extrapdnn/internal/obs"
	"extrapdnn/internal/regression"
)

// DefaultNoiseThreshold is the estimated noise level (fraction) above which
// the regression modeler is switched off. The synthetic evaluation
// (cmd/evalsynth) locates the accuracy crossover of the two modelers in the
// 10–20% band, matching the paper's analysis.
const DefaultNoiseThreshold = 0.20

// DefaultNoiseBucketWidth quantizes the estimated adaptation noise range in
// 2.5% steps. The rrd noise estimate is itself a coarse order statistic (its
// run-to-run resolution is no finer than a few percent), so snapping the
// range to 2.5% buckets costs no adaptation fidelity while letting kernels
// in the same noise band share one cached adaptation. See DESIGN.md
// ("Adaptation caching") for the width trade-off.
const DefaultNoiseBucketWidth = 0.025

// DefaultAdaptRetries is the default number of divergence-recovery retries
// after a failed domain adaptation (so up to 1+DefaultAdaptRetries training
// runs per adaptation). Each retry re-derives its rng deterministically from
// the task signature and the attempt counter (adaptcache.RetrySeed) and
// halves the learning rate, the standard first response to divergence.
const DefaultAdaptRetries = 2

// Config tunes the adaptive modeler.
type Config struct {
	// NoiseThreshold switches the regression modeler off when the estimated
	// noise level exceeds it. Zero means DefaultNoiseThreshold; a negative
	// value disables the regression modeler entirely.
	NoiseThreshold float64
	// Adapt configures the per-task domain adaptation.
	Adapt dnnmodel.AdaptConfig
	// DisableAdaptation skips the per-task retraining and uses the
	// pretrained network as-is (for ablation).
	DisableAdaptation bool
	// DisableDNN turns the adaptive modeler into a plain regression modeler
	// (for ablation and for the paper's baseline column).
	DisableDNN bool
	// TopK bounds the hypotheses per parameter (default 3).
	TopK int
	// Seed makes the synthetic adaptation data deterministic.
	Seed int64
	// AdaptCacheSize bounds the modeler's LRU cache of domain-adapted
	// networks, keyed by canonical task signature (parameter names and value
	// sets, repetition count, quantized noise bucket, adaptation config and
	// pretrained-network fingerprint). Zero disables caching and restores
	// the one-adaptation-per-Model-call cost; results are bit-identical
	// either way because the adaptation is a pure function of the signature.
	AdaptCacheSize int
	// AdaptCacheShards sets the adaptation cache's shard count (rounded up
	// to a power of two). Zero means adaptcache.DefaultShards; 1 restores
	// the single-mutex layout. Sharding only changes lock granularity —
	// contents, eviction budget and results are unaffected.
	AdaptCacheShards int
	// NoiseBucketWidth quantizes the estimated adaptation noise range before
	// it enters the task signature and the synthetic data generator. Zero
	// means DefaultNoiseBucketWidth; a negative value disables quantization
	// (every distinct estimate is its own signature).
	NoiseBucketWidth float64
	// AdaptRetries bounds the divergence-recovery retries after a failed
	// domain adaptation. Zero means DefaultAdaptRetries; a negative value
	// disables retries (one attempt only). Attempt 0 is bit-identical to the
	// retry-free path; retries re-seed deterministically and halve the
	// learning rate per attempt.
	AdaptRetries int
	// DisableFallback turns graceful degradation off: a DNN-path failure
	// (diverged adaptation after retries, or a failed DNN modeling run) is
	// returned as an error instead of falling back to the pretrained network
	// or the regression modeler. Use it to surface nn.ErrDiverged directly.
	DisableFallback bool
}

func (c Config) threshold() float64 {
	if c.NoiseThreshold == 0 {
		return DefaultNoiseThreshold
	}
	return c.NoiseThreshold
}

// bucketWidth returns the effective noise-bucket width (<= 0 disables
// quantization).
func (c Config) bucketWidth() float64 {
	if c.NoiseBucketWidth == 0 {
		return DefaultNoiseBucketWidth
	}
	return c.NoiseBucketWidth
}

// adaptRetries returns the effective retry count (negative disables).
func (c Config) adaptRetries() int {
	if c.AdaptRetries == 0 {
		return DefaultAdaptRetries
	}
	if c.AdaptRetries < 0 {
		return 0
	}
	return c.AdaptRetries
}

// Modeler is the adaptive performance modeler. It is safe for concurrent use
// and Model is a pure function of its input: the adaptation random stream is
// derived from the task signature (layout, repetitions, noise bucket) and the
// configured seed, so the same set always produces the same model —
// independent of call order, worker count, interleaving with other Model
// calls, or whether the adapted network came from the cache.
type Modeler struct {
	pretrained *dnnmodel.Modeler
	cfg        Config
	// fp fingerprints the pretrained network (computed once; the network is
	// never mutated) so cached adaptations never cross pretrained networks.
	fp uint64
	// cache holds domain-adapted networks keyed by task signature; nil when
	// caching is disabled (adaptcache.New returns nil for size <= 0 and all
	// its methods accept a nil receiver).
	cache *adaptcache.Cache
}

// New builds an adaptive modeler around a pretrained DNN modeler. The
// pretrained network is never mutated; domain adaptation always works on a
// clone. pretrained may be nil only when cfg.DisableDNN is set.
func New(pretrained *dnnmodel.Modeler, cfg Config) (*Modeler, error) {
	if pretrained == nil && !cfg.DisableDNN {
		return nil, fmt.Errorf("core: a pretrained DNN modeler is required unless DisableDNN is set")
	}
	if cfg.TopK > 0 && pretrained != nil {
		pretrained = &dnnmodel.Modeler{Net: pretrained.Net, TopK: cfg.TopK, Precision: pretrained.Precision}
	}
	m := &Modeler{pretrained: pretrained, cfg: cfg}
	if pretrained != nil && !cfg.DisableDNN && !cfg.DisableAdaptation {
		m.fp = pretrained.Net.Fingerprint()
		m.cache = adaptcache.NewSharded(cfg.AdaptCacheSize, cfg.AdaptCacheShards)
	}
	return m, nil
}

// CacheStats returns a snapshot of the adaptation-cache counters (zeros when
// caching is disabled). Misses count actual adaptation-training runs; Hits
// count Model calls that reused a cached network.
func (m *Modeler) CacheStats() adaptcache.Stats {
	return m.cache.Stats()
}

// Report is the complete outcome of one adaptive modeling run.
type Report struct {
	// Model is the selected performance model and SMAPE its cross-validated
	// score.
	Model regression.Result
	// Noise is the noise analysis of the input measurements.
	Noise noise.Analysis
	// UsedRegression and UsedDNN record which modelers ran.
	UsedRegression bool
	UsedDNN        bool
	// SelectedDNN reports whether the final model came from the DNN modeler.
	SelectedDNN bool
	// Regression and DNN hold the individual results when the respective
	// modeler ran.
	Regression *regression.Result
	DNN        *regression.Result
	// Durations breaks down where the modeling time went.
	Durations Durations
	// Resilience records the fault-tolerance path of this run: how many
	// adaptation attempts ran and whether (and why) the run degraded to a
	// fallback modeler.
	Resilience Resilience
}

// FallbackPath identifies the degradation path of one modeling run.
type FallbackPath int

const (
	// FallbackNone: the primary path (adapted DNN, plus regression below the
	// noise threshold) succeeded.
	FallbackNone FallbackPath = iota
	// FallbackPretrained: domain adaptation kept diverging, so the run used
	// the pretrained un-adapted network.
	FallbackPretrained
	// FallbackRegression: the DNN modeling path failed entirely and the run
	// degraded to the regression modeler (only taken below the noise
	// threshold, where regression is trustworthy).
	FallbackRegression
)

func (p FallbackPath) String() string {
	switch p {
	case FallbackPretrained:
		return "pretrained"
	case FallbackRegression:
		return "regression"
	default:
		return "none"
	}
}

// Resilience is the fault-tolerance record of one modeling run.
type Resilience struct {
	// AdaptAttempts is the number of adaptation training runs this call paid
	// for: 1 on the healthy path, >1 after divergence retries, 0 when the
	// adapted network came from the cache or adaptation was disabled.
	AdaptAttempts int
	// AdaptSkipped reports that no domain adaptation was even attempted
	// (DisableDNN or DisableAdaptation), disambiguating AdaptAttempts == 0
	// from the cache-hit case.
	AdaptSkipped bool
	// Fallback is the degradation path taken (FallbackNone when healthy).
	Fallback FallbackPath
	// FallbackErr is the error that forced the fallback (nil when healthy);
	// errors.Is(FallbackErr, nn.ErrDiverged) identifies divergence.
	FallbackErr error
}

// Resilience outcome labels, as returned by Resilience.Outcome and used as
// the "outcome" label of the extrapdnn_core_resilience_total metric family.
const (
	OutcomeFirstTry           = "first_try"           // one adaptation attempt, no fallback
	OutcomeRetried            = "retried"             // >1 attempts, recovered without fallback
	OutcomeCached             = "cached"              // adapted network reused from the cache
	OutcomeNoAdapt            = "no_adapt"            // adaptation disabled by config
	OutcomeFallbackPretrained = "fallback_pretrained" // degraded to the un-adapted network
	OutcomeFallbackRegression = "fallback_regression" // degraded to the regression modeler
)

// Outcome classifies the fault-tolerance path of a successful run into one of
// the Outcome* labels. In particular it distinguishes a run that recovered
// via divergence retries (OutcomeRetried) from plain first-try success —
// before this classification a successful retry was only visible by comparing
// AdaptAttempts against 1 and was silently conflated with the healthy path in
// the CLI output.
func (r Resilience) Outcome() string {
	switch r.Fallback {
	case FallbackPretrained:
		return OutcomeFallbackPretrained
	case FallbackRegression:
		return OutcomeFallbackRegression
	}
	switch {
	case r.AdaptSkipped:
		return OutcomeNoAdapt
	case r.AdaptAttempts == 0:
		return OutcomeCached
	case r.AdaptAttempts == 1:
		return OutcomeFirstTry
	default:
		return OutcomeRetried
	}
}

// Durations breaks the modeling time down (Fig. 6 of the paper).
type Durations struct {
	Adapt      time.Duration // domain adaptation (DNN retraining)
	DNN        time.Duration // DNN classification + hypothesis fitting
	Regression time.Duration // regression search
	Total      time.Duration
}

// Model runs the adaptive modeling process on a measurement set.
func (m *Modeler) Model(set *measurement.Set) (Report, error) {
	return m.ModelCtx(context.Background(), set)
}

// ModelCtx is Model with cancellation and graceful degradation. The context
// is observed at every adaptation/training epoch boundary and between
// per-parameter DNN fits; a cancelled run returns ctx's error without
// falling back. A diverged adaptation is retried deterministically (see
// Config.AdaptRetries) and then degraded to the pretrained network; a failed
// DNN modeling run degrades to the regression modeler when the noise level
// permits it. Report.Resilience records the path taken.
func (m *Modeler) ModelCtx(ctx context.Context, set *measurement.Set) (Report, error) {
	ctx, span := obs.StartSpan(ctx, "core.model")
	rep, err := m.modelCtx(ctx, set)
	if err != nil {
		obsModelErrors.Inc()
		if span != nil {
			span.SetString("error", err.Error())
			span.End()
		}
		return rep, err
	}
	obsModels.Inc()
	if obs.MetricsEnabled() {
		obsNoiseEstimate.Observe(rep.Noise.Global)
		obsModelSMAPE.Observe(rep.Model.SMAPE)
		if rep.SelectedDNN {
			obsSelectedDNN.Inc()
		} else {
			obsSelectedRegression.Inc()
		}
		obsResilience[rep.Resilience.Outcome()].Inc()
	}
	if span != nil {
		span.SetFloat("noise", rep.Noise.Global)
		span.SetFloat("smape", rep.Model.SMAPE)
		span.SetBool("selected_dnn", rep.SelectedDNN)
		span.SetString("outcome", rep.Resilience.Outcome())
		span.SetInt("adapt_attempts", int64(rep.Resilience.AdaptAttempts))
		span.End()
	}
	return rep, nil
}

// modelCtx is the uninstrumented body of ModelCtx.
func (m *Modeler) modelCtx(ctx context.Context, set *measurement.Set) (Report, error) {
	start := time.Now()
	var rep Report
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if faultinject.Enabled {
		faultinject.Fire(faultinject.SiteCoreModel, set)
	}
	if err := set.Validate(); err != nil {
		return rep, err
	}

	// Step 1: noise estimation.
	rep.Noise = noise.Analyze(set)

	// Step 2: task properties for domain adaptation.
	lines, err := regression.SelectLines(set)
	if err != nil {
		return rep, err
	}
	task := extractTask(set, rep.Noise, lines, m.cfg.bucketWidth())

	useRegression := m.cfg.DisableDNN || rep.Noise.Global <= m.threshold()
	useDNN := !m.cfg.DisableDNN
	rep.Resilience.AdaptSkipped = m.cfg.DisableDNN || m.cfg.DisableAdaptation

	// Steps 3 and 4: domain adaptation and DNN modeling.
	var dnnRes *regression.Result
	if useDNN {
		adaptStart := time.Now()
		modeler := m.pretrained
		if !m.cfg.DisableAdaptation {
			adapted, attempts, err := m.adaptedCtx(ctx, set, task)
			rep.Resilience.AdaptAttempts = attempts
			switch {
			case err == nil:
				modeler = adapted
			case ctx.Err() != nil:
				// Cancellation is never degraded around.
				rep.Durations.Adapt = time.Since(adaptStart)
				return rep, err
			case m.cfg.DisableFallback:
				rep.Durations.Adapt = time.Since(adaptStart)
				return rep, fmt.Errorf("core: domain adaptation: %w", err)
			default:
				// Diverged after all retries: degrade to the pretrained
				// un-adapted network, which is always finite.
				rep.Resilience.Fallback = FallbackPretrained
				rep.Resilience.FallbackErr = err
			}
		}
		rep.Durations.Adapt = time.Since(adaptStart)
		dnnStart := time.Now()
		res, err := modeler.ModelCtx(ctx, set)
		rep.Durations.DNN = time.Since(dnnStart)
		switch {
		case err == nil:
			dnnRes = &res
			rep.UsedDNN = true
			rep.DNN = dnnRes
		case ctx.Err() != nil:
			return rep, err
		case m.cfg.DisableFallback || !useRegression:
			// Above the noise threshold regression is untrustworthy (its
			// tight in-sample fit of noisy data destroys extrapolation), so
			// there is nothing sound to degrade to.
			return rep, fmt.Errorf("core: DNN modeler: %w", err)
		default:
			rep.Resilience.Fallback = FallbackRegression
			rep.Resilience.FallbackErr = err
		}
	}

	// Regression modeling (only below the noise threshold).
	var regRes *regression.Result
	if useRegression {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		regStart := time.Now()
		_, regSpan := obs.StartSpan(ctx, "core.regression")
		res, err := regression.Model(set, regression.Options{TopK: m.cfg.TopK})
		regSpan.End()
		rep.Durations.Regression = time.Since(regStart)
		if err != nil {
			if dnnRes == nil {
				return rep, fmt.Errorf("core: regression modeler: %w", err)
			}
		} else {
			regRes = &res
			rep.UsedRegression = true
			rep.Regression = regRes
		}
	}

	// Step 5: select the best model by cross-validated SMAPE.
	switch {
	case dnnRes != nil && regRes != nil:
		if dnnRes.SMAPE <= regRes.SMAPE {
			rep.Model, rep.SelectedDNN = *dnnRes, true
		} else {
			rep.Model = *regRes
		}
	case dnnRes != nil:
		rep.Model, rep.SelectedDNN = *dnnRes, true
	case regRes != nil:
		rep.Model = *regRes
	default:
		return rep, fmt.Errorf("core: no modeler produced a result")
	}
	rep.Durations.Total = time.Since(start)
	return rep, nil
}

// threshold returns the effective switching threshold.
func (m *Modeler) threshold() float64 {
	t := m.cfg.threshold()
	if t < 0 {
		return -1 // regression never runs
	}
	return t
}

// extractTask derives the adaptation task properties from a measurement set:
// the parameter-value sets of its selected lines, the repetition count, and
// the estimated noise range — clamped at 100% (beyond that level the
// synthetic labels are essentially random and retraining on them would
// degrade the classifier; the paper pretrains on n ∈ [0, 100%]) and then
// quantized to the noise-bucket width. Per-point noise levels in the
// adaptation data mirror real campaigns, whose run-to-run variability
// differs between configurations.
func extractTask(set *measurement.Set, na noise.Analysis, lines []regression.Line, bucketWidth float64) dnnmodel.TaskInfo {
	noiseMax := na.Max
	if noiseMax > 1 {
		noiseMax = 1
	}
	noiseMin := na.Min
	if noiseMin > noiseMax {
		noiseMin = noiseMax
	}
	task := dnnmodel.TaskInfo{
		Reps:          set.Repetitions(),
		NoiseMin:      quantizeNoise(noiseMin, bucketWidth),
		NoiseMax:      quantizeNoise(noiseMax, bucketWidth),
		PerPointNoise: true,
	}
	for _, line := range lines {
		task.ParamValues = append(task.ParamValues, line.Xs)
	}
	return task
}

// quantizeNoise snaps a noise level to the nearest bucket edge. Rounding (not
// flooring) keeps the quantization error within width/2, and the result is
// clamped back into [0, 1]. A non-positive width disables quantization.
func quantizeNoise(v, width float64) float64 {
	if width <= 0 {
		return v
	}
	q := math.Round(v/width) * width
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// signature builds the canonical cache signature of one adaptation task for
// this modeler. The quantized task plus the signature fields fully determine
// the adapted network: the rng stream is seeded from the signature key, so
// equal signatures produce bit-identical adaptations.
func (m *Modeler) signature(set *measurement.Set, task dnnmodel.TaskInfo) adaptcache.Signature {
	adapt := m.cfg.Adapt.WithDefaults()
	return adaptcache.Signature{
		ParamNames:      set.ParamNames,
		ParamValues:     task.ParamValues,
		Reps:            task.Reps,
		NoiseMin:        task.NoiseMin,
		NoiseMax:        task.NoiseMax,
		PerPointNoise:   task.PerPointNoise,
		SamplesPerClass: adapt.SamplesPerClass,
		Epochs:          adapt.Epochs,
		BatchSize:       adapt.BatchSize,
		LearningRate:    adapt.LearningRate,
		Fingerprint:     m.fp,
		Seed:            m.cfg.Seed,
		Precision:       adapt.Precision,
	}
}

// adaptedCtx returns the domain-adapted modeler for a task, from the cache
// when an equal-signature adaptation already ran. The adaptation is a pure
// function of the signature key (the rng is seeded from it), so a cache hit
// is bit-identical to the fresh adaptation it replaces; concurrent misses on
// one signature share a single adaptation run (adaptcache single-flight). A
// failed creation — divergence after all retries, or cancellation — returns
// an error and is never cached (adaptcache.GetOrCreateErr drops the pending
// entry), so a later equal-signature task retries from scratch. attempts is
// the number of adaptation training runs paid for by this call (0 on a cache
// hit).
func (m *Modeler) adaptedCtx(ctx context.Context, set *measurement.Set, task dnnmodel.TaskInfo) (mod *dnnmodel.Modeler, attempts int, err error) {
	key := m.signature(set, task).Key()
	mod, err = m.cache.GetOrCreateErr(key, func() (*dnnmodel.Modeler, error) {
		mod, n, err := m.adaptWithRetry(ctx, key, task)
		attempts = n
		return mod, err
	})
	return mod, attempts, err
}

// adaptWithRetry runs the domain adaptation with bounded deterministic
// divergence recovery: attempt 0 uses adaptcache.SeedFor(key) and the
// configured learning rate — bit-identical to the historical retry-free path
// — while attempt k>0 re-seeds via adaptcache.RetrySeed(key, k) and divides
// the learning rate by 2^k. Cancellation aborts the retry loop immediately.
func (m *Modeler) adaptWithRetry(ctx context.Context, key string, task dnnmodel.TaskInfo) (*dnnmodel.Modeler, int, error) {
	maxAttempts := 1 + m.cfg.adaptRetries()
	cfg := m.cfg.Adapt
	baseLR := cfg.WithDefaults().LearningRate
	if baseLR <= 0 {
		baseLR = nn.DefaultLearningRate
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			obsAdaptRetries.Inc()
			cfg.LearningRate = baseLR / float64(int64(1)<<uint(attempt))
		}
		rng := rand.New(rand.NewSource(adaptcache.RetrySeed(key, attempt)))
		mod, _, err := m.pretrained.DomainAdaptCtx(ctx, rng, task, cfg)
		if err == nil {
			return mod, attempt + 1, nil
		}
		if ctx.Err() != nil {
			return nil, attempt + 1, err
		}
		lastErr = err
	}
	return nil, maxAttempts, lastErr
}

// TaskSignature returns the layout-and-noise part of the canonical
// adaptation signature of a measurement set: parameter names, the exact
// value sets of the selected lines, the repetition count and the quantized
// noise bucket. Modeler-specific components (adaptation config, pretrained
// fingerprint, seed) are zero, so the result compares task *properties*
// across kernels — noisescan uses it to report how many distinct adaptations
// a profile would pay. bucketWidth follows Config.NoiseBucketWidth semantics:
// 0 means DefaultNoiseBucketWidth, negative disables quantization.
func TaskSignature(set *measurement.Set, bucketWidth float64) (string, error) {
	if err := set.Validate(); err != nil {
		return "", err
	}
	lines, err := regression.SelectLines(set)
	if err != nil {
		return "", err
	}
	na := noise.Analyze(set)
	task := extractTask(set, na, lines, Config{NoiseBucketWidth: bucketWidth}.bucketWidth())
	return adaptcache.Signature{
		ParamNames:    set.ParamNames,
		ParamValues:   task.ParamValues,
		Reps:          task.Reps,
		NoiseMin:      task.NoiseMin,
		NoiseMax:      task.NoiseMax,
		PerPointNoise: task.PerPointNoise,
	}.Key(), nil
}
