package core

import "extrapdnn/internal/obs"

// Adaptive-modeler telemetry. The resilience family is labeled by
// Resilience.Outcome() — one pre-registered handle per outcome, so the
// successful-retry path (outcome="retried") is distinguishable from first-try
// success and from cache reuse in scrapes as well as in CLI digests.
var (
	obsModels = obs.NewCounter("extrapdnn_core_models_total",
		"Adaptive modeling runs completed successfully.")
	obsModelErrors = obs.NewCounter("extrapdnn_core_model_errors_total",
		"Adaptive modeling runs that returned an error (including cancellation).")
	obsAdaptRetries = obs.NewCounter("extrapdnn_core_adapt_retries_total",
		"Divergence-recovery adaptation attempts beyond the first (successful or not).")
	obsSelectedDNN = obs.NewCounter("extrapdnn_core_selected_total",
		"Final model selections by winning modeler.", "modeler", "dnn")
	obsSelectedRegression = obs.NewCounter("extrapdnn_core_selected_total",
		"Final model selections by winning modeler.", "modeler", "regression")
	obsNoiseEstimate = obs.NewHistogram("extrapdnn_core_noise_estimate",
		"Estimated global noise level (fraction) per modeling run.",
		obs.LinearBuckets(0.05, 0.05, 12))
	obsModelSMAPE = obs.NewHistogram("extrapdnn_core_model_smape",
		"Cross-validated SMAPE of the selected model.",
		obs.LinearBuckets(0.05, 0.05, 12))
	obsResilience = map[string]*obs.Counter{
		OutcomeFirstTry:           newResilienceCounter(OutcomeFirstTry),
		OutcomeRetried:            newResilienceCounter(OutcomeRetried),
		OutcomeCached:             newResilienceCounter(OutcomeCached),
		OutcomeNoAdapt:            newResilienceCounter(OutcomeNoAdapt),
		OutcomeFallbackPretrained: newResilienceCounter(OutcomeFallbackPretrained),
		OutcomeFallbackRegression: newResilienceCounter(OutcomeFallbackRegression),
	}
)

func newResilienceCounter(outcome string) *obs.Counter {
	return obs.NewCounter("extrapdnn_core_resilience_total",
		"Successful modeling runs by fault-tolerance outcome (Resilience.Outcome).",
		"outcome", outcome)
}
