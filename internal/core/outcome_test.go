package core

import (
	"errors"
	"math/rand"
	"testing"
)

// TestResilienceOutcome pins the classification behind the
// extrapdnn_core_resilience_total metric label and the CLI suffixes — in
// particular that a successful divergence retry (attempts > 1, no fallback)
// is distinguishable from first-try success and from a cache hit.
func TestResilienceOutcome(t *testing.T) {
	cases := []struct {
		name string
		r    Resilience
		want string
	}{
		{"first try", Resilience{AdaptAttempts: 1}, OutcomeFirstTry},
		{"successful retry", Resilience{AdaptAttempts: 2}, OutcomeRetried},
		{"retry at the cap", Resilience{AdaptAttempts: 1 + DefaultAdaptRetries}, OutcomeRetried},
		{"cache hit", Resilience{AdaptAttempts: 0}, OutcomeCached},
		{"adaptation disabled", Resilience{AdaptSkipped: true}, OutcomeNoAdapt},
		{"pretrained fallback", Resilience{AdaptAttempts: 3, Fallback: FallbackPretrained,
			FallbackErr: errors.New("diverged")}, OutcomeFallbackPretrained},
		{"regression fallback", Resilience{AdaptAttempts: 1, Fallback: FallbackRegression,
			FallbackErr: errors.New("dnn failed")}, OutcomeFallbackRegression},
		{"fallback outranks skip", Resilience{AdaptSkipped: true, Fallback: FallbackRegression},
			OutcomeFallbackRegression},
	}
	for _, tc := range cases {
		if got := tc.r.Outcome(); got != tc.want {
			t.Errorf("%s: Outcome() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestModelOutcomeDistinguishesCachedFromSkipped runs the three zero-attempt
// shapes end to end: a healthy first model, a cache hit for the same
// signature, and an adaptation-disabled modeler. Before AdaptSkipped was
// recorded, the last two were indistinguishable in the report.
func TestModelOutcomeDistinguishesCachedFromSkipped(t *testing.T) {
	set := noisySet(rand.New(rand.NewSource(8)), 0.05, func(x float64) float64 { return 10 + 2*x })

	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1, AdaptCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Resilience.Outcome(); got != OutcomeFirstTry {
		t.Fatalf("fresh model Outcome = %q, want %q", got, OutcomeFirstTry)
	}
	rep, err = m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Resilience.Outcome(); got != OutcomeCached {
		t.Fatalf("repeat model Outcome = %q, want %q", got, OutcomeCached)
	}

	noAdapt, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1, DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = noAdapt.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Resilience.Outcome(); got != OutcomeNoAdapt {
		t.Fatalf("adaptation-disabled Outcome = %q, want %q", got, OutcomeNoAdapt)
	}
	if !rep.Resilience.AdaptSkipped {
		t.Fatal("AdaptSkipped not recorded with DisableAdaptation")
	}
}

// TestModelOutcomeFallbackPretrained pins the degraded classification on the
// real divergence path (every attempt diverges, pretrained network serves).
func TestModelOutcomeFallbackPretrained(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: divergingAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(9)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Resilience.Outcome(); got != OutcomeFallbackPretrained {
		t.Fatalf("Outcome = %q, want %q", got, OutcomeFallbackPretrained)
	}
}
