package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/measurement"
	"extrapdnn/internal/pmnf"
	"extrapdnn/internal/synth"
)

var (
	pretrainedOnce sync.Once
	pretrained     *dnnmodel.Modeler
)

func testPretrained() *dnnmodel.Modeler {
	pretrainedOnce.Do(func() {
		pretrained, _ = dnnmodel.Pretrain(dnnmodel.PretrainConfig{
			Hidden:          dnnmodel.TinyTopology,
			SamplesPerClass: 120,
			Epochs:          6,
			Seed:            1,
		})
	})
	return pretrained
}

// quietAdapt keeps per-test adaptation cheap.
var quietAdapt = dnnmodel.AdaptConfig{SamplesPerClass: 40, Epochs: 1}

func noisySet(rng *rand.Rand, level float64, f func(x float64) float64) *measurement.Set {
	s := &measurement.Set{}
	for _, x := range []float64{4, 8, 16, 32, 64} {
		vals := make([]float64, 5)
		for r := range vals {
			vals[r] = f(x) * synth.NoiseFactor(rng, level)
		}
		s.Data = append(s.Data, measurement.Measurement{Point: measurement.Point{x}, Values: vals})
	}
	return s
}

func TestNewRequiresPretrained(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil pretrained without DisableDNN should error")
	}
	if _, err := New(nil, Config{DisableDNN: true}); err != nil {
		t.Fatalf("DisableDNN should allow nil pretrained: %v", err)
	}
}

func TestModelCalmDataUsesBothAndFitsWell(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	set := noisySet(rng, 0.02, func(x float64) float64 { return 5 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedDNN || !rep.UsedRegression {
		t.Fatalf("calm data should use both modelers: %+v", rep)
	}
	lead := rep.Model.Model.LeadExponents()
	if d := pmnf.Distance(lead[0], pmnf.Exponents{I: 1}); d > 0.26 {
		t.Fatalf("calm linear data modeled as %v", rep.Model.Model)
	}
	if rep.Durations.Total <= 0 {
		t.Fatal("durations not recorded")
	}
}

func TestModelNoisyDataSwitchesOffRegression(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	set := noisySet(rng, 0.8, func(x float64) float64 { return 5 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedRegression {
		t.Fatalf("noise %.0f%% above threshold should switch regression off", rep.Noise.Global*100)
	}
	if !rep.UsedDNN || !rep.SelectedDNN {
		t.Fatal("noisy data must be modeled by the DNN")
	}
}

func TestModelDisableDNN(t *testing.T) {
	m, err := New(nil, Config{DisableDNN: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	set := noisySet(rng, 0.02, func(x float64) float64 { return 3 + x*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedDNN || rep.SelectedDNN || !rep.UsedRegression {
		t.Fatalf("DisableDNN violated: %+v", rep)
	}
	lead := rep.Model.Model.LeadExponents()
	if d := pmnf.Distance(lead[0], pmnf.Exponents{I: 2}); d > 0.26 {
		t.Fatalf("quadratic data modeled as %v", rep.Model.Model)
	}
}

func TestModelNegativeThresholdDisablesRegression(t *testing.T) {
	m, err := New(testPretrained(), Config{NoiseThreshold: -1, Adapt: quietAdapt, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	set := noisySet(rng, 0.0, func(x float64) float64 { return 1 + x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedRegression {
		t.Fatal("negative threshold must disable the regression modeler")
	}
}

func TestModelDisableAdaptation(t *testing.T) {
	m, err := New(testPretrained(), Config{DisableAdaptation: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	set := noisySet(rng, 0.1, func(x float64) float64 { return 2 + 3*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Durations.Adapt > rep.Durations.DNN*100 {
		t.Fatal("adaptation skipped but took substantial time")
	}
	if !rep.UsedDNN {
		t.Fatal("DNN should still run without adaptation")
	}
}

func TestModelInvalidSet(t *testing.T) {
	m, _ := New(testPretrained(), Config{Adapt: quietAdapt})
	if _, err := m.Model(&measurement.Set{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestModelSelectsSmallerSMAPE(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 7, NoiseThreshold: 1.9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	set := noisySet(rng, 0.05, func(x float64) float64 { return 4 + 0.5*x*math.Log2(x) })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regression != nil && rep.DNN != nil {
		want := math.Min(rep.Regression.SMAPE, rep.DNN.SMAPE)
		if rep.Model.SMAPE != want {
			t.Fatalf("selected SMAPE %v, want %v", rep.Model.SMAPE, want)
		}
	}
}

func TestModelTwoParameters(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	inst := synth.GenInstance(rng, synth.TaskSpec{
		NumParams: 2, PointsPerParam: 5, Reps: 5, NoiseLevel: 0.05, EvalPoints: 2,
	})
	rep, err := m.Model(inst.Set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model.Model.NumParams() != 2 {
		t.Fatalf("model has %d params", rep.Model.Model.NumParams())
	}
}

func TestModelDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	set := noisySet(rng, 0.3, func(x float64) float64 { return 1 + x })
	run := func() string {
		m, _ := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 42})
		rep, err := m.Model(set)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Model.Model.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different models:\n%s\n%s", a, b)
	}
}

func TestConfigThresholdDefault(t *testing.T) {
	if (Config{}).threshold() != DefaultNoiseThreshold {
		t.Fatal("zero threshold should default")
	}
	if (Config{NoiseThreshold: 0.5}).threshold() != 0.5 {
		t.Fatal("explicit threshold ignored")
	}
}

func TestNewTopKOverride(t *testing.T) {
	m, err := New(testPretrained(), Config{TopK: 2, Adapt: quietAdapt, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	set := noisySet(rng, 0.05, func(x float64) float64 { return 1 + x })
	if _, err := m.Model(set); err != nil {
		t.Fatal(err)
	}
}

func TestModelNoiseClampsAdaptationRange(t *testing.T) {
	// Extremely noisy measurements (estimated > 100%) must still model: the
	// adaptation range is clamped at 100%.
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	set := noisySet(rng, 1.8, func(x float64) float64 { return 5 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Noise.Max <= 1 {
		t.Skip("draw did not exceed 100% noise") // level 1.8 virtually always does
	}
	if !rep.UsedDNN {
		t.Fatal("extreme noise must still be modeled by the DNN")
	}
}

func TestModelReportDurations(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	set := noisySet(rng, 0.02, func(x float64) float64 { return 2 + x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Durations
	if d.Adapt <= 0 || d.DNN <= 0 || d.Regression <= 0 {
		t.Fatalf("missing duration components: %+v", d)
	}
	if d.Total < d.Adapt+d.DNN {
		t.Fatalf("total %v below sum of parts %+v", d.Total, d)
	}
}
