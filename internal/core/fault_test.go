//go:build faultinject

package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"extrapdnn/internal/faultinject"
	"extrapdnn/internal/nn"
	"extrapdnn/internal/obs"
)

// TestModelInjectedDivergenceRetriesThenSucceeds pins the recovery path: the
// first adaptation attempt is forced to diverge, the deterministic retry
// succeeds, and the recovered network is cached.
func TestModelInjectedDivergenceRetriesThenSucceeds(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	testPretrained() // build the shared fixture before any hook installs
	var mu sync.Mutex
	fires := 0
	faultinject.Set(faultinject.SiteTrainEpochLoss, func(args ...any) {
		mu.Lock()
		fires++
		first := fires == 1
		mu.Unlock()
		if first {
			*args[0].(*float64) = math.NaN()
		}
	})
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1, AdaptCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(11)), 0.05, func(x float64) float64 { return 10 + 2*x })
	obs.EnableMetrics()
	t.Cleanup(obs.DisableMetrics)
	retriedBefore := obsResilience[OutcomeRetried].Value()
	retriesBefore := obsAdaptRetries.Value()
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.AdaptAttempts != 2 {
		t.Fatalf("AdaptAttempts = %d, want 2 (one divergence, one successful retry)",
			rep.Resilience.AdaptAttempts)
	}
	if rep.Resilience.Fallback != FallbackNone || rep.Resilience.FallbackErr != nil {
		t.Fatalf("successful retry must not record a fallback: %+v", rep.Resilience)
	}
	if got := rep.Resilience.Outcome(); got != OutcomeRetried {
		t.Fatalf("Outcome = %q, want %q (recovery must not masquerade as first-try success)",
			got, OutcomeRetried)
	}
	if got := obsResilience[OutcomeRetried].Value() - retriedBefore; got != 1 {
		t.Fatalf("resilience{outcome=retried} advanced by %d, want 1", got)
	}
	if got := obsAdaptRetries.Value() - retriesBefore; got != 1 {
		t.Fatalf("adapt_retries_total advanced by %d, want 1", got)
	}
	if got := m.CacheStats().Entries; got != 1 {
		t.Fatalf("recovered adaptation must be cached: %d resident entries", got)
	}
}

// TestModelInjectedDivergenceExhaustsRetries forces every attempt to diverge
// and checks the degradation to the pretrained network, with nothing cached.
func TestModelInjectedDivergenceExhaustsRetries(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	testPretrained() // build the shared fixture before any hook installs
	faultinject.Set(faultinject.SiteTrainEpochLoss, func(args ...any) {
		*args[0].(*float64) = math.Inf(1)
	})
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1, AdaptCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(12)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + DefaultAdaptRetries; rep.Resilience.AdaptAttempts != want {
		t.Fatalf("AdaptAttempts = %d, want %d", rep.Resilience.AdaptAttempts, want)
	}
	if rep.Resilience.Fallback != FallbackPretrained ||
		!errors.Is(rep.Resilience.FallbackErr, nn.ErrDiverged) {
		t.Fatalf("Resilience = %+v, want pretrained fallback with ErrDiverged", rep.Resilience)
	}
	if got := m.CacheStats().Entries; got != 0 {
		t.Fatalf("diverged adaptation poisoned the cache: %d resident entries", got)
	}
}

// TestModelInjectedDNNFailureFallsBackToRegression fails the DNN modeling
// path below the noise threshold: the run must degrade to the regression
// modeler instead of erroring.
func TestModelInjectedDNNFailureFallsBackToRegression(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	testPretrained() // build the shared fixture before any hook installs
	injected := errors.New("injected DNN failure")
	faultinject.Set(faultinject.SiteDNNModel, func(args ...any) {
		*args[0].(*error) = injected
	})
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(13)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatalf("regression fallback must still produce a model: %v", err)
	}
	if rep.Resilience.Fallback != FallbackRegression ||
		!errors.Is(rep.Resilience.FallbackErr, injected) {
		t.Fatalf("Resilience = %+v, want regression fallback with the injected error", rep.Resilience)
	}
	if rep.UsedDNN || !rep.UsedRegression || rep.SelectedDNN {
		t.Fatalf("report flags = {UsedDNN:%v UsedRegression:%v SelectedDNN:%v}",
			rep.UsedDNN, rep.UsedRegression, rep.SelectedDNN)
	}
}

// TestModelInjectedDNNFailureAboveThresholdErrors pins the policy boundary:
// above the noise threshold regression is untrustworthy, so a total DNN
// failure is an error, not a silent degradation.
func TestModelInjectedDNNFailureAboveThresholdErrors(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	testPretrained() // build the shared fixture before any hook installs
	injected := errors.New("injected DNN failure")
	faultinject.Set(faultinject.SiteDNNModel, func(args ...any) {
		*args[0].(*error) = injected
	})
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(14)), 0.6, func(x float64) float64 { return 10 + 2*x })
	rep, errModel := m.Model(set)
	if rep.Noise.Global <= DefaultNoiseThreshold {
		t.Skipf("fixture landed below the threshold (noise %.3f)", rep.Noise.Global)
	}
	if !errors.Is(errModel, injected) {
		t.Fatalf("err = %v, want the injected DNN failure", errModel)
	}
}

// TestModelCtxCancelDuringAdaptation cancels from inside the first training
// epoch and checks ModelCtx stops at the next epoch boundary with ctx's
// error — no retries, no fallback.
func TestModelCtxCancelDuringAdaptation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	testPretrained() // build the shared fixture before any hook installs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Set(faultinject.SiteTrainEpochLoss, func(args ...any) { cancel() })
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1, AdaptCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(15)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, errModel := m.ModelCtx(ctx, set)
	if !errors.Is(errModel, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", errModel)
	}
	if rep.Resilience.AdaptAttempts != 1 {
		t.Fatalf("AdaptAttempts = %d, want 1 (cancellation must not retry)",
			rep.Resilience.AdaptAttempts)
	}
	if got := m.CacheStats().Entries; got != 0 {
		t.Fatalf("cancelled adaptation must not be cached: %d resident entries", got)
	}
}
