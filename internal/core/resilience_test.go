package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/nn"
)

// divergingAdapt makes every adaptation attempt diverge: the runaway learning
// rate stays above the weight-explosion limit even after the per-retry
// halving (1e9, 5e8, 2.5e8 vs the 1e8 limit).
var divergingAdapt = dnnmodel.AdaptConfig{
	SamplesPerClass: 10,
	Epochs:          1,
	LearningRate:    10 * nn.WeightExplosionLimit,
}

func TestModelDivergedAdaptationFallsBackToPretrained(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: divergingAdapt, Seed: 1, AdaptCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(3)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatalf("fallback path must still produce a model: %v", err)
	}
	if rep.Resilience.Fallback != FallbackPretrained {
		t.Fatalf("Fallback = %v, want pretrained", rep.Resilience.Fallback)
	}
	if want := 1 + DefaultAdaptRetries; rep.Resilience.AdaptAttempts != want {
		t.Fatalf("AdaptAttempts = %d, want %d", rep.Resilience.AdaptAttempts, want)
	}
	if !errors.Is(rep.Resilience.FallbackErr, nn.ErrDiverged) {
		t.Fatalf("FallbackErr = %v, want ErrDiverged", rep.Resilience.FallbackErr)
	}
	if !rep.UsedDNN {
		t.Fatal("pretrained fallback must still run the DNN modeler")
	}
	if got := m.CacheStats().Entries; got != 0 {
		t.Fatalf("diverged adaptation poisoned the cache: %d resident entries", got)
	}

	// The degraded path is as deterministic as the healthy one.
	rep2, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Model.Model.String() != rep.Model.Model.String() || rep2.Model.SMAPE != rep.Model.SMAPE {
		t.Fatalf("degraded path not deterministic: %v vs %v", rep.Model.Model, rep2.Model.Model)
	}
	if rep2.Resilience.AdaptAttempts != rep.Resilience.AdaptAttempts {
		t.Fatalf("retry count not deterministic: %d vs %d",
			rep.Resilience.AdaptAttempts, rep2.Resilience.AdaptAttempts)
	}
}

func TestModelDisableFallbackSurfacesErrDiverged(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: divergingAdapt, Seed: 1, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(4)), 0.05, func(x float64) float64 { return 10 + 2*x })
	if _, err := m.Model(set); !errors.Is(err, nn.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestModelNegativeAdaptRetriesDisablesRetry(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: divergingAdapt, Seed: 1, AdaptRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(5)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.AdaptAttempts != 1 {
		t.Fatalf("AdaptAttempts = %d, want 1 with retries disabled", rep.Resilience.AdaptAttempts)
	}
	if rep.Resilience.Fallback != FallbackPretrained {
		t.Fatalf("Fallback = %v, want pretrained", rep.Resilience.Fallback)
	}
}

func TestModelCtxCancelledBeforeStart(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(6)), 0.05, func(x float64) float64 { return 10 + 2*x })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ModelCtx(ctx, set); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestModelHealthyRunRecordsNoFallback(t *testing.T) {
	m, err := New(testPretrained(), Config{Adapt: quietAdapt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := noisySet(rand.New(rand.NewSource(7)), 0.05, func(x float64) float64 { return 10 + 2*x })
	rep, err := m.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.Fallback != FallbackNone || rep.Resilience.FallbackErr != nil {
		t.Fatalf("healthy run recorded fallback: %+v", rep.Resilience)
	}
	if rep.Resilience.AdaptAttempts != 1 {
		t.Fatalf("AdaptAttempts = %d, want 1 on the healthy uncached path", rep.Resilience.AdaptAttempts)
	}
}

func TestFallbackPathString(t *testing.T) {
	cases := map[FallbackPath]string{
		FallbackNone:       "none",
		FallbackPretrained: "pretrained",
		FallbackRegression: "regression",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
