package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"extrapdnn/internal/pmnf"
)

func TestGenSequenceKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for kind := SequenceKind(0); kind < numSequenceKinds; kind++ {
		for trial := 0; trial < 20; trial++ {
			seq := GenSequence(rng, kind, 9)
			if len(seq) != 9 {
				t.Fatalf("%v: len %d", kind, len(seq))
			}
			for i, v := range seq {
				if v <= 0 {
					t.Fatalf("%v: nonpositive value %g", kind, v)
				}
				if i > 0 && seq[i-1] >= v {
					t.Fatalf("%v: not strictly increasing: %v", kind, seq)
				}
			}
		}
	}
}

func TestGenSequenceEmpty(t *testing.T) {
	if GenSequence(rand.New(rand.NewSource(1)), Linear, 0) != nil {
		t.Fatal("count 0 should give nil")
	}
}

func TestGenSequenceUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	GenSequence(rand.New(rand.NewSource(1)), SequenceKind(99), 5)
}

func TestSequenceKindString(t *testing.T) {
	if Linear.String() != "linear" || Exponential.String() != "exponential" {
		t.Fatal("String names wrong")
	}
	if SequenceKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestNoiseFactorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		f := NoiseFactor(rng, 0.2)
		if f < 0.9 || f > 1.1 {
			t.Fatalf("noise factor %v outside ±10%% for level 20%%", f)
		}
	}
	if NoiseFactor(rng, 0) != 1 {
		t.Fatal("zero noise should give factor 1")
	}
}

func TestGenLineSampleNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	classLinear, _ := pmnf.ClassIndex(pmnf.Exponents{I: 1, J: 0})
	xs := []float64{4, 8, 16, 32, 64}
	s := GenLineSample(rng, classLinear, xs, 1, 0, 0)
	if s.Class != classLinear || len(s.Values) != 5 {
		t.Fatalf("sample = %+v", s)
	}
	// Noiseless linear data: second differences of (v - c0)/c1 over xs must
	// be consistent with linearity: v = c0 + c1*x → v strictly increasing.
	for i := 1; i < 5; i++ {
		if s.Values[i] <= s.Values[i-1] {
			t.Fatalf("linear class values not increasing: %v", s.Values)
		}
	}
}

func TestGenLineSampleRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := GenLineSample(rng, 0, nil, 5, 0.1, 0.5)
	if len(s.Xs) < 5 || len(s.Xs) > 11 {
		t.Fatalf("random sequence length %d outside [5,11]", len(s.Xs))
	}
	if len(s.Values) != len(s.Xs) {
		t.Fatal("values/xs length mismatch")
	}
}

func TestGenLineSampleRepsReduceNoise(t *testing.T) {
	// With more repetitions the median is closer to truth on average.
	rng := rand.New(rand.NewSource(5))
	classConst, _ := pmnf.ClassIndex(pmnf.Exponents{})
	xs := []float64{10, 20, 30, 40, 50}
	spread := func(reps int) float64 {
		total := 0.0
		for trial := 0; trial < 200; trial++ {
			s := GenLineSample(rng, classConst, xs, reps, 0.5, 0.5)
			mean := 0.0
			for _, v := range s.Values {
				mean += v
			}
			mean /= float64(len(s.Values))
			for _, v := range s.Values {
				total += math.Abs(v - mean)
			}
		}
		return total
	}
	if spread(5) >= spread(1) {
		t.Fatal("5 repetitions should reduce dispersion relative to 1")
	}
}

func TestGenInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := GenInstance(rng, TaskSpec{NumParams: 2, PointsPerParam: 5, Reps: 5, NoiseLevel: 0.1, EvalPoints: 4})
	if got := len(inst.Set.Data); got != 25 {
		t.Fatalf("grid size %d, want 25", got)
	}
	if len(inst.EvalPoints) != 4 || len(inst.EvalTruth) != 4 {
		t.Fatalf("eval points %d/%d", len(inst.EvalPoints), len(inst.EvalTruth))
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Truth.NumParams() != 2 {
		t.Fatalf("truth has %d params", inst.Truth.NumParams())
	}
	for _, m := range inst.Set.Data {
		if len(m.Values) != 5 {
			t.Fatalf("expected 5 reps, got %d", len(m.Values))
		}
	}
}

func TestGenInstanceEvalPointsBeyondRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		inst := GenInstance(rng, TaskSpec{NumParams: 1, PointsPerParam: 5, Reps: 1, EvalPoints: 4})
		maxModel := inst.ParamValues[0][4]
		for _, p := range inst.EvalPoints {
			if p[0] <= maxModel {
				t.Fatalf("eval point %v inside modeling range (max %g)", p, maxModel)
			}
		}
	}
}

func TestGenInstanceNoiselessMatchesTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := GenInstance(rng, TaskSpec{NumParams: 2, PointsPerParam: 5, Reps: 3, NoiseLevel: 0, EvalPoints: 2})
	for _, m := range inst.Set.Data {
		want := inst.Truth.Eval(m.Point)
		for _, v := range m.Values {
			if math.Abs(v-want) > 1e-9*math.Abs(want) {
				t.Fatalf("noiseless value %v != truth %v at %v", v, want, m.Point)
			}
		}
	}
}

func TestGenInstancePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, spec := range []TaskSpec{{NumParams: 0, PointsPerParam: 5}, {NumParams: 1, PointsPerParam: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %+v should panic", spec)
				}
			}()
			GenInstance(rng, spec)
		}()
	}
}

func TestRandomPartitionCoversAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		blocks := randomPartition(rng, m)
		seen := map[int]int{}
		for _, b := range blocks {
			if len(b) == 0 {
				return false
			}
			for _, l := range b {
				seen[l]++
			}
		}
		if len(seen) != m {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCartesian(t *testing.T) {
	grid := cartesian([][]float64{{1, 2}, {10, 20, 30}})
	if len(grid) != 6 {
		t.Fatalf("grid size %d, want 6", len(grid))
	}
	if grid[0][0] != 1 || grid[0][1] != 10 || grid[5][0] != 2 || grid[5][1] != 30 {
		t.Fatalf("grid = %v", grid)
	}
}

func TestGenInstanceDeterministic(t *testing.T) {
	spec := TaskSpec{NumParams: 2, PointsPerParam: 5, Reps: 5, NoiseLevel: 0.3, EvalPoints: 4}
	a := GenInstance(rand.New(rand.NewSource(42)), spec)
	b := GenInstance(rand.New(rand.NewSource(42)), spec)
	if a.Truth.String() != b.Truth.String() {
		t.Fatal("same seed should generate identical truth")
	}
	for i := range a.Set.Data {
		if a.Set.Data[i].Values[0] != b.Set.Data[i].Values[0] {
			t.Fatal("same seed should generate identical measurements")
		}
	}
}

func TestGenLineSampleOptsPerPointNoise(t *testing.T) {
	// Per-point noise must produce valid samples of the requested shape; and
	// with a degenerate range [x, x] it matches the per-line behavior
	// statistically (here we only check structure and determinism).
	rng := rand.New(rand.NewSource(21))
	xs := []float64{4, 8, 16, 32, 64}
	s := GenLineSampleOpts(rng, 5, xs, 5, 0.1, 0.9, true)
	if len(s.Values) != len(xs) || s.Class != 5 {
		t.Fatalf("sample = %+v", s)
	}
	for _, v := range s.Values {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("invalid value %v", v)
		}
	}
	a := GenLineSampleOpts(rand.New(rand.NewSource(3)), 7, xs, 3, 0.2, 0.8, true)
	b := GenLineSampleOpts(rand.New(rand.NewSource(3)), 7, xs, 3, 0.2, 0.8, true)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("per-point sampling should be deterministic per seed")
		}
	}
}

// TestGenLineWorkspaceMatchesSample pins the workspace fast path to the
// allocating API: same seed, bit-identical sequence and values, for both
// provided and generated parameter sequences.
func TestGenLineWorkspaceMatchesSample(t *testing.T) {
	var w LineWorkspace
	for _, fixed := range []bool{true, false} {
		var xs []float64
		if fixed {
			xs = []float64{8, 64, 512, 4096, 32768}
		}
		for class := 0; class < pmnf.NumClasses; class += 5 {
			seed := int64(100 + class)
			want := GenLineSampleOpts(rand.New(rand.NewSource(seed)), class, xs, 3, 0.1, 0.6, true)
			gxs, vals := w.GenLine(rand.New(rand.NewSource(seed)), class, xs, 3, 0.1, 0.6, true)
			if len(gxs) != len(want.Xs) || len(vals) != len(want.Values) {
				t.Fatalf("fixed=%v class %d: shape mismatch", fixed, class)
			}
			for i := range gxs {
				if gxs[i] != want.Xs[i] || vals[i] != want.Values[i] {
					t.Fatalf("fixed=%v class %d: workspace diverges at point %d", fixed, class, i)
				}
			}
		}
	}
}

// TestGenLineWorkspaceAllocationFree gates the steady-state contract: once
// the scratch buffers are grown, GenLine must not touch the heap.
func TestGenLineWorkspaceAllocationFree(t *testing.T) {
	var w LineWorkspace
	rng := rand.New(rand.NewSource(31))
	xs := []float64{4, 8, 16, 32, 64}
	w.GenLine(rng, 3, xs, 5, 0.1, 0.5, true) // warm the buffers
	allocs := testing.AllocsPerRun(200, func() {
		w.GenLine(rng, 3, xs, 5, 0.1, 0.5, true)
	})
	if allocs != 0 {
		t.Fatalf("GenLine allocates %v times per call on warm buffers, want 0", allocs)
	}
}

// TestGenSequenceIntoReusesBuffer verifies buffer reuse and equivalence with
// the allocating GenSequence for every kind.
func TestGenSequenceIntoReusesBuffer(t *testing.T) {
	buf := make([]float64, 16)
	for kind := SequenceKind(0); kind < numSequenceKinds; kind++ {
		want := GenSequence(rand.New(rand.NewSource(int64(kind)+50)), kind, 9)
		got := GenSequenceInto(buf, rand.New(rand.NewSource(int64(kind)+50)), kind, 9)
		if &got[0] != &buf[0] {
			t.Fatalf("%v: buffer not reused", kind)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: GenSequenceInto diverges: %v vs %v", kind, got, want)
			}
		}
	}
	if GenSequenceInto(buf, rand.New(rand.NewSource(1)), Linear, 0) != nil {
		t.Fatal("count 0 should give nil")
	}
}

func TestTermVisibilityEnforced(t *testing.T) {
	// Generated single-parameter samples must carry a visible term: the
	// noiseless value range along the line spans at least a few percent of
	// the mean for non-constant classes on a wide sequence.
	rng := rand.New(rand.NewSource(22))
	xs := []float64{8, 64, 512, 4096, 32768}
	linClass, _ := pmnf.ClassIndex(pmnf.Exponents{I: 1})
	for trial := 0; trial < 50; trial++ {
		s := GenLineSample(rng, linClass, xs, 1, 0, 0)
		lo, hi, sum := s.Values[0], s.Values[0], 0.0
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		mean := sum / float64(len(s.Values))
		if (hi-lo)/mean < minTermVisibility/2 {
			t.Fatalf("trial %d: invisible linear term, values %v", trial, s.Values)
		}
	}
}
