// Package synth generates the synthetic performance data used to train the
// DNN modeler and to evaluate both modelers (Sections IV-D and V of the
// paper): PMNF functions with random exponents and coefficients, realistic
// parameter-value sequences, uniform measurement noise, and simulated
// measurement repetitions reduced to their median.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"extrapdnn/internal/measurement"
	"extrapdnn/internal/pmnf"
	"extrapdnn/internal/stats"
)

// SequenceKind selects the family of parameter-value sequences, imitating
// the kinds of execution-parameter scalings found in real applications.
type SequenceKind int

const (
	// Linear sequences such as (10, 20, 30, 40, 50).
	Linear SequenceKind = iota
	// SmallLinear sequences with small starts and strides, e.g. (2, 4, 6, 8, 10).
	SmallLinear
	// SmallExponential sequences doubling each step, e.g. (4, 8, 16, 32, 64).
	SmallExponential
	// Exponential sequences growing by a larger factor, e.g. (8, 64, 512, 4096, 32768).
	Exponential
	// UniformRandom sequences of sorted distinct values drawn uniformly from a range.
	UniformRandom

	numSequenceKinds
)

// String returns the sequence-kind name.
func (k SequenceKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case SmallLinear:
		return "small-linear"
	case SmallExponential:
		return "small-exponential"
	case Exponential:
		return "exponential"
	case UniformRandom:
		return "uniform-random"
	default:
		return fmt.Sprintf("SequenceKind(%d)", int(k))
	}
}

// RandomSequenceKind draws a sequence kind uniformly.
func RandomSequenceKind(rng *rand.Rand) SequenceKind {
	return SequenceKind(rng.Intn(int(numSequenceKinds)))
}

// GenSequence generates a strictly increasing sequence of count positive
// parameter values of the given kind. Longer counts extend the same rule, so
// extrapolation points can be produced by generating count+4 values and
// splitting.
func GenSequence(rng *rand.Rand, kind SequenceKind, count int) []float64 {
	return GenSequenceInto(nil, rng, kind, count)
}

// GenSequenceInto is GenSequence writing into dst's storage when its capacity
// suffices, so callers with a reusable scratch buffer generate without
// allocating. It returns the sequence (length count), which aliases dst when
// no growth was needed, and consumes the rng identically to GenSequence.
func GenSequenceInto(dst []float64, rng *rand.Rand, kind SequenceKind, count int) []float64 {
	if count <= 0 {
		return nil
	}
	if cap(dst) < count {
		dst = make([]float64, count)
	}
	out := dst[:count]
	switch kind {
	case Linear:
		start := float64(10 * (1 + rng.Intn(10)))
		stride := float64(10 * (1 + rng.Intn(10)))
		for i := range out {
			out[i] = start + stride*float64(i)
		}
	case SmallLinear:
		start := float64(1 + rng.Intn(8))
		stride := float64(1 + rng.Intn(8))
		for i := range out {
			out[i] = start + stride*float64(i)
		}
	case SmallExponential:
		start := float64(int(2) << rng.Intn(3)) // 2, 4, or 8
		v := start
		for i := range out {
			out[i] = v
			v *= 2
		}
	case Exponential:
		factor := float64(int(4) << rng.Intn(2)) // 4 or 8
		v := factor
		for i := range out {
			out[i] = v
			v *= factor
		}
	case UniformRandom:
		// Sorted distinct uniform draws; extension continues with the same
		// average spacing so extrapolation points stay ordered. Draw-until-
		// distinct with a sorted insert into the output keeps the draw
		// sequence (and thus the result) identical to the historical
		// map-and-sort construction without its allocations.
		lo := 1 + rng.Float64()*10
		hi := lo + 50 + rng.Float64()*1000
		n := 0
		for n < count {
			v := lo + rng.Float64()*(hi-lo)
			v = float64(int(v)) + 1 // integer-valued parameters, >= 1
			pos, dup := n, false
			for pos > 0 && out[pos-1] >= v {
				if out[pos-1] == v {
					dup = true
					break
				}
				pos--
			}
			if dup {
				continue
			}
			copy(out[pos+1:n+1], out[pos:n])
			out[pos] = v
			n++
		}
	default:
		panic(fmt.Sprintf("synth: unknown sequence kind %d", kind))
	}
	return out
}

// NoiseFactor returns a multiplicative noise factor for one measured value:
// 1 + level*(U-0.5) with U uniform on [0,1), so a level of 0.10 perturbs by
// up to ±5% (the paper's convention).
func NoiseFactor(rng *rand.Rand, level float64) float64 {
	return 1 + level*(rng.Float64()-0.5)
}

// CoeffMin and CoeffMax bound the uniform coefficient distribution of the
// synthetic functions (Section IV-D).
const (
	CoeffMin = 0.001
	CoeffMax = 1000
)

// genCoeff draws a coefficient uniformly from [CoeffMin, CoeffMax].
func genCoeff(rng *rand.Rand) float64 {
	return CoeffMin + rng.Float64()*(CoeffMax-CoeffMin)
}

// minTermVisibility is the smallest contribution a non-constant term must
// make, relative to the function's overall scale across the sampled points,
// for the generated function to count as carrying its nominal complexity
// class. Without this constraint a draw like f = 900 + 0.01*x^(1/4) is
// labeled x^(1/4) although it is indistinguishable from a constant over any
// realistic measurement range — label noise that no modeler could overcome
// and that the paper's near-perfect low-noise accuracy rules out.
const minTermVisibility = 0.25

// termSpan returns max-min of c1*e.Eval over the positions.
func termSpan(e pmnf.Exponents, c1 float64, xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		v := c1 * e.Eval(x)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// LineSample is one single-parameter training sample for the DNN: the
// parameter values of the line, the median measured values after simulated
// repetitions, and the exponent class that generated it.
type LineSample struct {
	Xs     []float64
	Values []float64
	Class  int
}

// GenLineSample generates one training sample of the given class. When xs is
// nil a random sequence of 5–11 points is drawn; otherwise the provided
// parameter values are used (domain adaptation uses the task's own values).
// The noise level is drawn uniformly from [noiseLo, noiseHi]; reps values
// are sampled per point and reduced to their median (reps >= 1).
func GenLineSample(rng *rand.Rand, class int, xs []float64, reps int, noiseLo, noiseHi float64) LineSample {
	return GenLineSampleOpts(rng, class, xs, reps, noiseLo, noiseHi, false)
}

// GenLineSampleOpts is GenLineSample with control over the noise draw: with
// perPointNoise each measurement point gets its own level from
// [noiseLo, noiseHi], mirroring campaigns whose run-to-run variability
// differs per configuration; otherwise one level covers the whole line.
func GenLineSampleOpts(rng *rand.Rand, class int, xs []float64, reps int, noiseLo, noiseHi float64, perPointNoise bool) LineSample {
	var w LineWorkspace
	gxs, values := w.GenLine(rng, class, xs, reps, noiseLo, noiseHi, perPointNoise)
	return LineSample{Xs: gxs, Values: values, Class: class}
}

// LineWorkspace holds the reusable scratch buffers for allocation-free line
// generation: the generated parameter sequence, the per-point median values,
// and the simulated-repetition buffer. The zero value is ready to use. A
// workspace serves one goroutine at a time; the dataset builder keeps one per
// worker.
type LineWorkspace struct {
	seq  []float64
	vals []float64
	reps []float64
}

// GenLine generates one training line exactly like GenLineSampleOpts — same
// rng consumption, bit-identical values — but writes into the workspace
// buffers instead of allocating fresh slices per sample. The returned slices
// alias the workspace (outXs aliases the caller's xs when one is provided)
// and stay valid only until the next GenLine call on the same workspace.
func (w *LineWorkspace) GenLine(rng *rand.Rand, class int, xs []float64, reps int, noiseLo, noiseHi float64, perPointNoise bool) (outXs, values []float64) {
	if xs == nil {
		n := 5 + rng.Intn(7)
		w.seq = GenSequenceInto(w.seq, rng, RandomSequenceKind(rng), n)
		xs = w.seq
	}
	if reps < 1 {
		reps = 1
	}
	exps := pmnf.Class(class)
	c0, c1 := genCoeff(rng), genCoeff(rng)
	// Redraw coefficients until the term is visible over the line (see
	// minTermVisibility); classes that are inherently flat on this sequence
	// keep the last draw.
	if !exps.IsConstant() {
		for try := 0; try < 100; try++ {
			span := termSpan(exps, c1, xs)
			meanTerm := 0.0
			for _, x := range xs {
				meanTerm += exps.Eval(x)
			}
			meanTerm /= float64(len(xs))
			if span >= minTermVisibility*(c0+c1*meanTerm) {
				break
			}
			c0, c1 = genCoeff(rng), genCoeff(rng)
		}
	}
	level := noiseLo + rng.Float64()*(noiseHi-noiseLo)
	if cap(w.vals) < len(xs) {
		w.vals = make([]float64, len(xs))
	}
	values = w.vals[:len(xs)]
	if cap(w.reps) < reps {
		w.reps = make([]float64, reps)
	}
	repBuf := w.reps[:reps]
	for i, x := range xs {
		if perPointNoise {
			level = noiseLo + rng.Float64()*(noiseHi-noiseLo)
		}
		truth := c0 + c1*exps.Eval(x)
		for r := range repBuf {
			repBuf[r] = truth * NoiseFactor(rng, level)
		}
		values[i] = stats.MedianInPlace(repBuf)
	}
	return xs, values
}

// TaskSpec describes one synthetic multi-parameter evaluation task
// (Section V): the grid of measurement points, the repetition count, the
// injected noise level, and the number of extrapolation points.
type TaskSpec struct {
	NumParams      int
	PointsPerParam int     // typically 5
	Reps           int     // typically 5
	NoiseLevel     float64 // fraction, e.g. 0.5 for 50%
	EvalPoints     int     // extrapolation points P+, typically 4
	// ParamValues optionally fixes the per-parameter value sequences of the
	// measured grid instead of drawing random ones, so many instances can
	// share one experiment layout — the shape of a real application profile,
	// where every kernel is measured over the same design (and which the
	// adaptation cache exploits). When set it must hold NumParams strictly
	// increasing sequences of PointsPerParam positive values; extrapolation
	// points continue each sequence linearly (next = last + last step).
	ParamValues [][]float64
}

// Instance is one generated evaluation task: the ground-truth model, the
// noisy measurement set over the full grid, and the extrapolation points
// with their noiseless truth values.
type Instance struct {
	Truth       pmnf.Model
	Set         *measurement.Set
	ParamValues [][]float64
	EvalPoints  []measurement.Point
	EvalTruth   []float64
}

// GenInstance generates one evaluation task. The ground-truth model is built
// from one random exponent class per parameter; the parameters are combined
// into terms by a random set partition, covering both additive and
// multiplicative interactions, with coefficients drawn uniformly.
func GenInstance(rng *rand.Rand, spec TaskSpec) Instance {
	if spec.NumParams < 1 {
		panic("synth: TaskSpec.NumParams must be >= 1")
	}
	if spec.PointsPerParam < 2 {
		panic("synth: TaskSpec.PointsPerParam must be >= 2")
	}
	m := spec.NumParams

	// Parameter-value sequences, extended for extrapolation points. A fixed
	// layout (spec.ParamValues) is continued linearly past the measured grid;
	// a random one extends by its own generation rule.
	seqs := make([][]float64, m)
	values := make([][]float64, m)
	for l := 0; l < m; l++ {
		if spec.ParamValues != nil {
			if len(spec.ParamValues) != m || len(spec.ParamValues[l]) != spec.PointsPerParam {
				panic("synth: TaskSpec.ParamValues must hold NumParams sequences of PointsPerParam values")
			}
			seq := append([]float64(nil), spec.ParamValues[l]...)
			step := seq[len(seq)-1] - seq[len(seq)-2]
			for e := 0; e < spec.EvalPoints; e++ {
				seq = append(seq, seq[len(seq)-1]+step)
			}
			seqs[l] = seq
		} else {
			seqs[l] = GenSequence(rng, RandomSequenceKind(rng), spec.PointsPerParam+spec.EvalPoints)
		}
		values[l] = seqs[l][:spec.PointsPerParam]
	}

	// Ground truth: one exponent class per parameter, random partition into
	// product terms. Coefficients are redrawn until every term contributes
	// visibly over the measured grid (see minTermVisibility), so the labeled
	// complexity is actually present in the data.
	exps := make([]pmnf.Exponents, m)
	for l := range exps {
		exps[l] = pmnf.Class(rng.Intn(pmnf.NumClasses))
	}
	grid := cartesian(values)
	var truth pmnf.Model
	blocks := randomPartition(rng, m)
	for try := 0; try < 100; try++ {
		truth = pmnf.Model{Constant: genCoeff(rng)}
		for _, group := range blocks {
			term := pmnf.Term{Coefficient: genCoeff(rng), Exps: make([]pmnf.Exponents, m)}
			for _, l := range group {
				term.Exps[l] = exps[l]
			}
			truth.Terms = append(truth.Terms, term)
		}
		if termsVisible(truth, grid) {
			break
		}
	}

	// Noisy measurements over the full grid.
	set := &measurement.Set{Metric: "runtime"}
	reps := spec.Reps
	if reps < 1 {
		reps = 1
	}
	for _, pt := range grid {
		base := truth.Eval(pt)
		vals := make([]float64, reps)
		for r := range vals {
			vals[r] = base * NoiseFactor(rng, spec.NoiseLevel)
		}
		set.Data = append(set.Data, measurement.Measurement{
			Point:  measurement.Point(pt),
			Values: vals,
		})
	}

	// Extrapolation points: diagonal continuation of every sequence (Fig. 2).
	inst := Instance{Truth: truth, Set: set, ParamValues: values}
	for e := 0; e < spec.EvalPoints; e++ {
		pt := make(measurement.Point, m)
		for l := 0; l < m; l++ {
			pt[l] = seqs[l][spec.PointsPerParam+e]
		}
		inst.EvalPoints = append(inst.EvalPoints, pt)
		inst.EvalTruth = append(inst.EvalTruth, truth.Eval(pt))
	}
	return inst
}

// termsVisible reports whether every non-constant term of the model spans at
// least minTermVisibility of the function's mean value across the grid.
func termsVisible(model pmnf.Model, grid [][]float64) bool {
	meanF := 0.0
	for _, pt := range grid {
		meanF += model.Eval(pt)
	}
	meanF /= float64(len(grid))
	for _, t := range model.Terms {
		nonConstant := false
		for _, e := range t.Exps {
			if !e.IsConstant() {
				nonConstant = true
				break
			}
		}
		if !nonConstant {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, pt := range grid {
			v := t.Eval(pt)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < minTermVisibility*math.Abs(meanF) {
			return false
		}
	}
	return true
}

// randomPartition splits the parameter indices 0..m-1 into a uniformly
// chosen ordered set partition: parameters in the same block multiply within
// one term, distinct blocks add.
func randomPartition(rng *rand.Rand, m int) [][]int {
	var blocks [][]int
	for l := 0; l < m; l++ {
		// Chinese-restaurant style assignment: join an existing block or
		// open a new one with equal probability per option.
		choice := rng.Intn(len(blocks) + 1)
		if choice == len(blocks) {
			blocks = append(blocks, []int{l})
		} else {
			blocks[choice] = append(blocks[choice], l)
		}
	}
	return blocks
}

// cartesian enumerates the full grid of parameter values in row-major order.
func cartesian(values [][]float64) [][]float64 {
	total := 1
	for _, v := range values {
		total *= len(v)
	}
	out := make([][]float64, 0, total)
	idx := make([]int, len(values))
	for n := 0; n < total; n++ {
		pt := make([]float64, len(values))
		for l := range values {
			pt[l] = values[l][idx[l]]
		}
		out = append(out, pt)
		for l := len(values) - 1; l >= 0; l-- {
			idx[l]++
			if idx[l] < len(values[l]) {
				break
			}
			idx[l] = 0
		}
	}
	return out
}
