// Campaign walkthrough: the full workflow a performance engineer follows —
// plan the experiment design, run the (here: simulated) measurement
// campaign, estimate noise, model every kernel, and predict at scale.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extrapdnn"
)

func main() {
	// 1. Plan the campaign: two parameters, crossing-lines layout.
	values := [][]float64{
		{16, 32, 64, 128, 256},         // processes
		{1000, 2000, 3000, 4000, 5000}, // problem size
	}
	plan, err := extrapdnn.CrossingLinesDesign(values, 5)
	if err != nil {
		log.Fatal(err)
	}
	cost := extrapdnn.CostModel{ProcessParam: 0}
	fmt.Printf("plan: %d points x %d reps = %d runs, ~%.0f core-hours\n",
		len(plan.Points), plan.Reps, plan.NumExperiments(), cost.CoreHours(plan))

	// 2. "Run" the campaign. Here a simulated machine executes the plan for
	// two kernels with known behavior and ±15% run-to-run variation.
	rng := rand.New(rand.NewSource(11))
	kernels := map[string]func(p, n float64) float64{
		"solve":    func(p, n float64) float64 { return 2 + 0.01*n + 0.4*p },
		"exchange": func(p, n float64) float64 { return 1 + 0.002*n + 3*log2(p) },
	}
	prof := &extrapdnn.Profile{Application: "demo", ParamNames: []string{"p", "n"}}
	for name, truth := range kernels {
		set := &extrapdnn.MeasurementSet{ParamNames: prof.ParamNames, Metric: "runtime"}
		for _, pt := range plan.Points {
			vals := make([]float64, plan.Reps)
			for r := range vals {
				vals[r] = truth(pt[0], pt[1]) * (1 + 0.15*(rng.Float64()-0.5))
			}
			set.Data = append(set.Data, extrapdnn.Measurement{
				Point:  extrapdnn.Point(pt.Clone()),
				Values: vals,
			})
		}
		prof.Entries = append(prof.Entries, extrapdnn.ProfileEntry{
			Kernel: name, Metric: "runtime", RuntimeShare: 0.4, Set: set,
		})
	}

	// 3. Model every kernel adaptively.
	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{64, 48},
		PretrainSamplesPerClass: 200,
		PretrainEpochs:          4,
		Seed:                    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := modeler.ModelProfile(prof)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report models and predictions at 4096 processes.
	for _, pr := range reports {
		if pr.Err != nil {
			fmt.Printf("%-9s modeling failed: %v\n", pr.Kernel, pr.Err)
			continue
		}
		model := pr.Report.Model.Model
		pred := model.Eval([]float64{1024, 5000})
		truth := kernels[pr.Kernel](1024, 5000)
		fmt.Printf("%-9s noise %4.1f%%  model %-40s  f(1024,5000)=%7.1f (true %7.1f)\n",
			pr.Kernel, pr.Report.Noise.Global*100, model.String(), pred, truth)
	}
}

// log2 avoids importing math for one call.
func log2(x float64) float64 {
	n := 0.0
	for ; x > 1; x /= 2 {
		n++
	}
	return n
}
