// Scalability-bug hunt: the motivating use case of empirical performance
// modeling (and of Extra-P itself) — model every kernel of an application
// from small-scale runs, then flag the kernels whose growth with the
// process count diverges from what the algorithm promises.
//
//	go run ./examples/scalabilitybugs
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"extrapdnn"
)

// kernel describes one code region of the demo application: its true
// behavior on the simulated machine and the complexity its algorithm
// promises on paper.
type kernel struct {
	name     string
	truth    func(p float64) float64
	promised extrapdnn.Exponents
}

func main() {
	kernels := []kernel{
		// A compute kernel: perfectly scalable (constant per-process work).
		{"stencil", func(p float64) float64 { return 40 }, extrapdnn.Exponents{}},
		// A tree reduction: promised O(log p) and behaving.
		{"reduce", func(p float64) float64 { return 2 + 1.5*math.Log2(p) }, extrapdnn.Exponents{J: 1}},
		// The bug: promised O(log p), but a serialized gather makes it
		// linear in p.
		{"gather", func(p float64) float64 { return 1 + 0.08*p }, extrapdnn.Exponents{J: 1}},
	}

	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{64, 48},
		PretrainSamplesPerClass: 200,
		PretrainEpochs:          4,
		Seed:                    4,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	fmt.Printf("%-8s | %-24s | %-12s | %-10s | %s\n",
		"kernel", "model", "growth", "verdict", "diverges from promise?")
	for _, k := range kernels {
		// Small-scale measurement campaign: 5 process counts, 5 reps, ±10%.
		set := &extrapdnn.MeasurementSet{ParamNames: []string{"p"}}
		for _, p := range []float64{32, 64, 128, 256, 512} {
			vals := make([]float64, 5)
			for r := range vals {
				vals[r] = k.truth(p) * (1 + 0.05*(rng.Float64()-0.5))
			}
			set.Data = append(set.Data, extrapdnn.Measurement{
				Point:  extrapdnn.Point{p},
				Values: vals,
			})
		}
		rep, err := modeler.Model(set)
		if err != nil {
			log.Fatal(err)
		}
		promised := k.promised
		// Grade the growth at the target scale (32768 processes), ignoring
		// terms that contribute less than 1% there.
		analysis, err := extrapdnn.AnalyzeScalingAt(rep.Model.Model, 0, &promised, []float64{32768}, 0)
		if err != nil {
			log.Fatal(err)
		}
		divergence := "no"
		if analysis.Diverges {
			divergence = "YES — scalability bug"
		}
		fmt.Printf("%-8s | %-24s | %-12s | %-10s | %s\n",
			k.name, rep.Model.Model, analysis.GrowthClass, analysis.Verdict, divergence)
	}

	// Project the bug's impact: parallel efficiency of the gather at scale.
	set := &extrapdnn.MeasurementSet{}
	for _, p := range []float64{32, 64, 128, 256, 512} {
		set.Data = append(set.Data, extrapdnn.Measurement{
			Point: extrapdnn.Point{p}, Values: []float64{kernels[2].truth(p)},
		})
	}
	res, err := extrapdnn.RegressionModel(set)
	if err != nil {
		log.Fatal(err)
	}
	procs := []float64{512, 2048, 8192, 32768}
	eff, err := extrapdnn.ParallelEfficiency(res.Model, 0, procs, []float64{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprojected weak-scaling efficiency of the gather kernel:")
	for i, p := range procs {
		fmt.Printf("  p=%-6.0f E=%.2f\n", p, eff[i])
	}
}
