// Noise study: how does measurement noise affect extrapolation accuracy?
//
// For one known scaling function, this example sweeps the injected noise
// level, models the noisy measurements with the regression baseline and the
// adaptive modeler, and prints the extrapolation error of both — a
// miniature of Fig. 3(d) of the paper.
//
//	go run ./examples/noisestudy
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"extrapdnn"
)

func main() {
	truth := func(p float64) float64 { return 12 + 0.8*math.Pow(p, 1.5) }
	xs := []float64{4, 8, 16, 32, 64}
	evalAt := 512.0 // three doublings beyond the measured range

	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{64, 48},
		PretrainSamplesPerClass: 200,
		PretrainEpochs:          4,
		Seed:                    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("noise   | regression err | adaptive err | adaptive model")
	for _, level := range []float64{0.02, 0.10, 0.20, 0.50, 1.0} {
		// Average over a few draws so one lucky sample does not mislead.
		const draws = 5
		var regErr, adaptErr float64
		var lastModel string
		for d := 0; d < draws; d++ {
			rng := rand.New(rand.NewSource(int64(100*level) + int64(d)))
			set := &extrapdnn.MeasurementSet{ParamNames: []string{"p"}}
			for _, x := range xs {
				vals := make([]float64, 5)
				for r := range vals {
					vals[r] = truth(x) * (1 + level*(rng.Float64()-0.5))
				}
				set.Data = append(set.Data, extrapdnn.Measurement{
					Point:  extrapdnn.Point{x},
					Values: vals,
				})
			}

			reg, err := extrapdnn.RegressionModel(set)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := modeler.Model(set)
			if err != nil {
				log.Fatal(err)
			}
			want := truth(evalAt)
			regErr += 100 * math.Abs(reg.Model.Eval([]float64{evalAt})-want) / want
			adaptErr += 100 * math.Abs(rep.Model.Model.Eval([]float64{evalAt})-want) / want
			lastModel = rep.Model.Model.String()
		}
		fmt.Printf("%5.0f%%  | %13.2f%% | %11.2f%% | %s\n",
			level*100, regErr/draws, adaptErr/draws, lastModel)
	}
	fmt.Printf("\ntrue function: 12 + 0.8*p^(3/2), extrapolated to p=%.0f\n", evalAt)
}
