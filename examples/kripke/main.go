// Kripke case study: model the SweepSolver kernel of the particle-transport
// mini-app over three execution parameters — processes x1, direction sets
// x2, energy groups x3 — from a simulated measurement campaign, and compare
// the model against the theoretical complexity O(x1^(1/3) * x2 * x3^(4/5)).
//
// This mirrors Section VI of the paper: 125 measurement points (the x2=12
// plane held out), 5 repetitions, and extrapolation to P+(32768, 12, 160).
//
//	go run ./examples/kripke
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"extrapdnn"
)

// sweepSolver is the paper's measured model of the kernel, used here as the
// ground truth of the simulated machine.
func sweepSolver(x1, x2, x3 float64) float64 {
	return 8.51 + 0.11*math.Pow(x1, 1.0/3)*x2*math.Pow(x3, 4.0/5)
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// The measurement campaign: Vulcan-like noise of up to ±25% per point.
	set := &extrapdnn.MeasurementSet{ParamNames: []string{"x1", "x2", "x3"}, Metric: "runtime"}
	for _, x1 := range []float64{8, 64, 512, 4096, 32768} {
		for _, x2 := range []float64{2, 4, 6, 8, 10} { // x2 = 12 held out
			for _, x3 := range []float64{32, 64, 96, 128, 160} {
				base := sweepSolver(x1, x2, x3)
				level := 0.04 + 0.4*math.Pow(rng.Float64(), 2.5) // rare high noise
				vals := make([]float64, 5)
				for r := range vals {
					vals[r] = base * (1 + level*(rng.Float64()-0.5))
				}
				set.Data = append(set.Data, extrapdnn.Measurement{
					Point:  extrapdnn.Point{x1, x2, x3},
					Values: vals,
				})
			}
		}
	}

	na := extrapdnn.EstimateNoise(set)
	fmt.Printf("campaign: %d points x %d reps, noise mean %.1f%% (range %.1f%%–%.1f%%)\n",
		len(set.Data), set.Repetitions(), na.Mean*100, na.Min*100, na.Max*100)

	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{96, 64},
		PretrainSamplesPerClass: 250,
		PretrainEpochs:          4,
		Seed:                    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := modeler.Model(set)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:    %s\n", report.Model.Model)
	fmt.Printf("expected: 8.51 + 0.11*x1^(1/3)*x2*x3^(4/5)  (theoretical complexity)\n")

	// Extrapolate to the held-out corner of the design space.
	eval := []float64{32768, 12, 160}
	pred := report.Model.Model.Eval(eval)
	truth := sweepSolver(eval[0], eval[1], eval[2])
	fmt.Printf("P+(32768, 12, 160): predicted %.1f, true %.1f (error %.1f%%)\n",
		pred, truth, 100*math.Abs(pred-truth)/truth)
}
