// Multi-parameter modeling from sparse crossing lines: the cheapest valid
// experiment design for two parameters (the layout the paper uses for
// FASTEST and RELeARN) — one line per parameter, nine points in total,
// loaded from the text measurement format.
//
//	go run ./examples/multiparam
package main

import (
	"fmt"
	"log"
	"strings"

	"extrapdnn"
)

// measurements holds two crossing lines for a solver whose runtime is
// ~ 2 + 0.004*n + 0.5*log2(p): a per-process problem-size term plus a
// tree-reduction term. Values carry ~5% noise over three repetitions.
const measurements = `
# params: p n
# line 1: scale the process count at n = 65536
16  65536 266.1 270.9 263.7
32  65536 264.8 265.9 270.3
64  65536 266.0 272.1 268.2
128 65536 270.5 265.5 268.9
256 65536 268.3 273.0 266.4
# line 2: scale the problem size at p = 256
256 8192  37.3 36.4 37.0
256 16384 69.5 67.7 68.4
256 32768 134.3 136.2 132.8
256 131072 527.3 536.1 531.0
`

func main() {
	set, err := extrapdnn.ReadMeasurementsText(strings.NewReader(measurements), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d measurement points over parameters %v\n",
		len(set.Data), set.ParamNames)

	na := extrapdnn.EstimateNoise(set)
	fmt.Printf("estimated noise: %.1f%%\n", na.Global*100)

	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{64, 48},
		PretrainSamplesPerClass: 200,
		PretrainEpochs:          4,
		Seed:                    5,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := modeler.Model(set)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %s\n", report.Model.Model)
	fmt.Printf("       (generated from ~2 + 0.004*n + 0.5*log2(p))\n")

	// Predict a configuration that was never measured: both parameters
	// beyond their lines' fixed values.
	pred := report.Model.Model.Eval([]float64{1024, 262144})
	truth := 2 + 0.004*262144 + 0.5*10 // log2(1024) = 10
	fmt.Printf("prediction at P+(p=1024, n=262144): %.1f (true ~%.1f)\n", pred, truth)
}
