// Quickstart: model the scaling behavior of an application from five noisy
// measurements and predict its runtime at a larger scale.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extrapdnn"
)

func main() {
	// Pretend we benchmarked an application at 5 process counts with 5
	// repetitions each. The "true" scaling is 3 + 2*p*log2(p) (e.g. a
	// tree-based exchange per process), perturbed by ±10% run-to-run noise.
	rng := rand.New(rand.NewSource(7))
	truth := func(p float64) float64 {
		lg := 0.0
		for v := p; v > 1; v /= 2 {
			lg++
		}
		return 3 + 2*p*lg
	}
	set := &extrapdnn.MeasurementSet{ParamNames: []string{"p"}, Metric: "runtime"}
	for _, p := range []float64{4, 8, 16, 32, 64} {
		vals := make([]float64, 5)
		for r := range vals {
			vals[r] = truth(p) * (1 + 0.2*(rng.Float64()-0.5))
		}
		set.Data = append(set.Data, extrapdnn.Measurement{
			Point:  extrapdnn.Point{p},
			Values: vals,
		})
	}

	// How noisy are the measurements?
	na := extrapdnn.EstimateNoise(set)
	fmt.Printf("estimated noise level: %.1f%%\n", na.Global*100)

	// Build the adaptive modeler. The small topology keeps this example
	// fast; drop Topology (or use extrapdnn.PaperTopology()) for real use.
	modeler, err := extrapdnn.NewAdaptiveModeler(extrapdnn.Options{
		Topology:                []int{64, 48},
		PretrainSamplesPerClass: 200,
		PretrainEpochs:          4,
		Seed:                    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := modeler.Model(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance model:     %s\n", report.Model.Model)
	fmt.Printf("cross-val SMAPE:       %.2f%%\n", report.Model.SMAPE)

	// Extrapolate to 1024 processes — 4 doublings beyond the measurements.
	pred := report.Model.Model.Eval([]float64{1024})
	fmt.Printf("predicted runtime at p=1024:  %.0f (true value %.0f)\n", pred, truth(1024))
}
