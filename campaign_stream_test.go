package extrapdnn

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"extrapdnn/internal/cliutil"
	"extrapdnn/internal/profile"
)

// sameProfileReport compares everything deterministic about two reports
// (durations are wall-clock and excluded).
func sameProfileReport(t *testing.T, ctx string, got, want ProfileReport) {
	t.Helper()
	if got.Kernel != want.Kernel || got.Metric != want.Metric {
		t.Fatalf("%s: identity differs: %s/%s vs %s/%s", ctx, got.Kernel, got.Metric, want.Kernel, want.Metric)
	}
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", ctx, got.Err, want.Err)
	}
	if want.Report == nil {
		return
	}
	if got.Report.Model.Model.String() != want.Report.Model.Model.String() {
		t.Errorf("%s: model differs: %q vs %q", ctx, got.Report.Model.Model.String(), want.Report.Model.Model.String())
	}
	if got.Report.Model.SMAPE != want.Report.Model.SMAPE {
		t.Errorf("%s: SMAPE differs: %v vs %v", ctx, got.Report.Model.SMAPE, want.Report.Model.SMAPE)
	}
	if !reflect.DeepEqual(got.Report.Noise, want.Report.Noise) {
		t.Errorf("%s: noise analysis differs", ctx)
	}
	if got.Report.SelectedDNN != want.Report.SelectedDNN ||
		got.Report.UsedRegression != want.Report.UsedRegression ||
		got.Report.UsedDNN != want.Report.UsedDNN {
		t.Errorf("%s: modeler selection differs", ctx)
	}
}

// TestModelProfileStreamMatchesSlice pins the tentpole guarantee of the
// streaming API: ModelProfileStream over an in-memory source is bit-identical
// to the slice-based ModelProfile, in input order when Ordered is set.
func TestModelProfileStreamMatchesSlice(t *testing.T) {
	m := apiTestModeler(t)
	prof := multiKernelProfile(t)
	want, err := m.ModelProfile(prof)
	if err != nil {
		t.Fatal(err)
	}

	for _, opts := range []StreamOptions{
		{Workers: 1, MaxInFlight: 1, Ordered: true},
		{Workers: 4, Ordered: true},
		{Workers: 4}, // completion order
	} {
		var got []StreamReport
		err := m.ModelProfileStream(context.Background(), ProfileEntries(prof.Entries), opts,
			func(r StreamReport) error {
				got = append(got, r)
				return nil
			})
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(got) != len(want) {
			t.Fatalf("opts %+v: emitted %d reports, want %d", opts, len(got), len(want))
		}
		seen := make(map[int]bool, len(got))
		for pos, r := range got {
			if opts.Ordered && r.Index != pos {
				t.Fatalf("opts %+v: position %d delivered index %d — ordered delivery broken", opts, pos, r.Index)
			}
			if seen[r.Index] {
				t.Fatalf("opts %+v: index %d delivered twice", opts, r.Index)
			}
			seen[r.Index] = true
			sameProfileReport(t, prof.Entries[r.Index].Kernel, r.ProfileReport, want[r.Index])
		}
	}
}

// TestModelProfileStreamFromScanner feeds the stream from the on-disk format
// via a Scanner, end to end, and checks it matches the in-memory run.
func TestModelProfileStreamFromScanner(t *testing.T) {
	m := apiTestModeler(t)
	prof := multiKernelProfile(t)
	want, err := m.ModelProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := NewProfileScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = m.ModelProfileStream(context.Background(), sc, StreamOptions{Workers: 4, Ordered: true},
		func(r StreamReport) error {
			sameProfileReport(t, r.Kernel, r.ProfileReport, want[r.Index])
			n++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("scanner stream delivered %d reports, want %d", n, len(want))
	}
}

// streamToJSONL mirrors the perfmodeler -out-jsonl emit path: every report is
// appended to w before anything else happens, and a cancellation-caused entry
// error halts the stream via ErrInterrupted without writing a line.
func streamToJSONL(ctx context.Context, m *AdaptiveModeler, src ProfileSource, w *cliutil.ResultWriter, onLine func()) error {
	return m.ModelProfileStream(ctx, src, StreamOptions{Workers: 1, MaxInFlight: 1, Ordered: true},
		func(r StreamReport) error {
			line := cliutil.ResultLine{Kernel: r.Kernel, Metric: r.Metric}
			if r.Err == nil {
				line.Model = r.Report.Model.Model.String()
				line.SMAPE = r.Report.Model.SMAPE
			}
			if err := w.WriteResult(line, r.Err); err != nil {
				return err
			}
			if onLine != nil {
				onLine()
			}
			return nil
		})
}

// TestModelProfileStreamCheckpointResume is the crash-recovery acceptance
// test: a campaign canceled mid-run leaves a results file holding exactly the
// completed prefix, and a resumed run that skips the checkpointed entries
// appends the rest so the concatenated file is bit-identical to an
// uninterrupted run.
func TestModelProfileStreamCheckpointResume(t *testing.T) {
	m := apiTestModeler(t)
	prof := multiKernelProfile(t)

	// Reference: the uninterrupted campaign.
	var full bytes.Buffer
	if err := streamToJSONL(context.Background(), m, ProfileEntries(prof.Entries), cliutil.NewResultWriter(&full), nil); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: with Workers=1, MaxInFlight=1 and Ordered, canceling
	// right after the first line is written means entry 1 is only modeled
	// after the cancellation, so the file deterministically holds exactly
	// one line.
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := cliutil.NewResultWriter(&out)
	err := streamToJSONL(ctx, m, ProfileEntries(prof.Entries), w, func() {
		if w.Count() == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want a cancellation", err)
	}
	if w.Count() != 1 {
		t.Fatalf("interrupted run wrote %d lines, want exactly the 1 completed before cancel", w.Count())
	}

	// Resume: the results file doubles as the checkpoint.
	done, lines, err := cliutil.ReadCheckpoint(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lines != 1 {
		t.Fatalf("checkpoint holds %d lines, want 1", lines)
	}
	src := profile.Filter(profile.Entries(prof.Entries), func(e ProfileEntry) bool {
		return !done[cliutil.CheckpointKey(e.Kernel, e.Metric)]
	})
	if err := streamToJSONL(context.Background(), m, src, w, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.Skipped(); got != 1 {
		t.Fatalf("resume skipped %d checkpointed entries, want 1", got)
	}
	if w.Count() != len(prof.Entries) {
		t.Fatalf("after resume the file holds %d lines, want %d", w.Count(), len(prof.Entries))
	}
	if !bytes.Equal(out.Bytes(), full.Bytes()) {
		t.Fatalf("resumed output is not bit-identical to the uninterrupted run:\n--- resumed ---\n%s--- full ---\n%s", out.String(), full.String())
	}
}

// TestModelProfileStreamEmitError pins that an emit failure (a full disk, in
// practice) stops the campaign and surfaces the emit error verbatim.
func TestModelProfileStreamEmitError(t *testing.T) {
	m := apiTestModeler(t)
	prof := multiKernelProfile(t)
	sentinel := errors.New("disk full")
	emitted := 0
	err := m.ModelProfileStream(context.Background(), ProfileEntries(prof.Entries),
		StreamOptions{Workers: 2, Ordered: true},
		func(r StreamReport) error {
			emitted++
			if emitted == 2 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("stream returned %v, want the emit error", err)
	}
	if emitted != 2 {
		t.Fatalf("%d reports emitted after the failure, want none past the second", emitted)
	}
}
