package extrapdnn

// One benchmark per table/figure of the paper (see DESIGN.md §3), plus
// ablation and microbenchmarks. Each figure benchmark runs a scaled-down but
// shape-preserving version of the corresponding experiment and reports the
// headline quantities via b.ReportMetric, so `go test -bench=.` regenerates
// the qualitative result of every figure. The full-size regenerations live
// in cmd/evalsynth and cmd/evalcases.
//
// Hot-path baselines (Pretrain, DomainAdaptation, MatMul256) are recorded in
// docs/PERFORMANCE.md; the allocation-regression gates for the training loop
// live in internal/nn and the fused-kernel microbenchmarks in internal/mat.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"extrapdnn/internal/apps"
	"extrapdnn/internal/dnnmodel"
	"extrapdnn/internal/eval"
	"extrapdnn/internal/mat"
	"extrapdnn/internal/measurement"
	"extrapdnn/internal/nn"
	"extrapdnn/internal/noise"
	"extrapdnn/internal/pmnf"
	"extrapdnn/internal/preprocess"
	"extrapdnn/internal/regression"
	"extrapdnn/internal/synth"
)

var (
	benchOnce sync.Once
	benchPre  *dnnmodel.Modeler
)

// benchPretrained shares one small pretrained network across benchmarks;
// pretraining itself is measured separately in BenchmarkPretrain.
func benchPretrained() *dnnmodel.Modeler {
	benchOnce.Do(func() {
		benchPre, _ = dnnmodel.Pretrain(dnnmodel.PretrainConfig{
			Hidden:          []int{96, 64},
			SamplesPerClass: 250,
			Epochs:          4,
			Seed:            1,
		})
	})
	return benchPre
}

var benchAdapt = dnnmodel.AdaptConfig{SamplesPerClass: 60, Epochs: 1}

// benchSynth runs one scaled-down Fig. 3 sweep and reports the adaptive and
// regression accuracy (bucket d <= 1/2) and P4+ errors at the highest level.
func benchSynth(b *testing.B, m int, levels []float64) {
	pre := benchPretrained()
	b.ResetTimer()
	var last eval.SynthRow
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunSynth(eval.SynthConfig{
			NumParams:   m,
			NoiseLevels: levels,
			Functions:   12,
			Seed:        int64(i + 1),
			Pretrained:  pre,
			Adapt:       benchAdapt,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1]
	}
	b.ReportMetric(last.RegAcc[2]*100, "reg-acc-d1/2-%")
	b.ReportMetric(last.AdaptAcc[2]*100, "adapt-acc-d1/2-%")
	b.ReportMetric(last.RegErr[3], "reg-P4err-%")
	b.ReportMetric(last.AdaptErr[3], "adapt-P4err-%")
}

// Fig. 3(a)/(d): one-parameter accuracy and predictive power, low noise.
func BenchmarkFig3aAccuracy1P(b *testing.B) { benchSynth(b, 1, []float64{0.02}) }

// Fig. 3(a)/(d) at the high-noise end, where the adaptive modeler wins.
func BenchmarkFig3dPredPower1P(b *testing.B) { benchSynth(b, 1, []float64{0.75}) }

// Fig. 3(b)/(e): two parameters.
func BenchmarkFig3bAccuracy2P(b *testing.B) { benchSynth(b, 2, []float64{0.02}) }

func BenchmarkFig3ePredPower2P(b *testing.B) { benchSynth(b, 2, []float64{0.75}) }

// Fig. 3(c)/(f): three parameters.
func BenchmarkFig3cAccuracy3P(b *testing.B) { benchSynth(b, 3, []float64{0.02}) }

func BenchmarkFig3fPredPower3P(b *testing.B) { benchSynth(b, 3, []float64{0.75}) }

// Fig. 4: case-study prediction error (RELeARN, the cheapest case study;
// cmd/evalcases runs all three).
func BenchmarkFig4CaseStudyPrediction(b *testing.B) {
	pre := benchPretrained()
	b.ResetTimer()
	var res eval.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunCaseStudy(apps.RELeARN(), eval.CaseConfig{
			Pretrained: pre,
			Adapt:      benchAdapt,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RegMedianErr, "reg-err-%")
	b.ReportMetric(res.AdaptMedianErr, "adapt-err-%")
}

// Fig. 5: noise-level analysis over the generated case-study measurements.
func BenchmarkFig5NoiseDistributions(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sets := make([]*measurement.Set, 0)
	for _, app := range apps.All() {
		for _, k := range app.Kernels {
			sets = append(sets, app.Generate(rng, k))
		}
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			mean = noise.Analyze(s).Mean
		}
	}
	b.ReportMetric(mean*100, "last-mean-noise-%")
}

// Fig. 6: modeling-time comparison on one kernel — regression vs adaptive
// (the adaptive time is dominated by domain adaptation).
func BenchmarkFig6ModelingTime(b *testing.B) {
	pre := benchPretrained()
	app := apps.RELeARN()
	rng := rand.New(rand.NewSource(2))
	set := app.Generate(rng, app.Kernels[0])

	b.Run("regression", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := regression.Model(set, regression.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		task := dnnmodel.TaskInfo{Reps: 2, NoiseMin: 0, NoiseMax: 0.01}
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			adapted := pre.DomainAdapt(rng, task, benchAdapt)
			if _, err := adapted.Model(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Section IV-B: noise-estimator validation.
func BenchmarkNoiseEstimatorError(b *testing.B) {
	var errFrac float64
	for i := 0; i < b.N; i++ {
		errFrac = eval.NoiseEstimatorError(int64(i+1), 10, nil)
	}
	b.ReportMetric(errFrac*100, "est-err-%")
}

// Ablation: domain adaptation on vs off (accuracy of the DNN modeler on a
// high-noise task distribution).
func BenchmarkAblationDomainAdaptation(b *testing.B) {
	pre := benchPretrained()
	task := dnnmodel.TaskInfo{
		ParamValues: [][]float64{{8, 64, 512, 4096, 32768}},
		Reps:        5,
		NoiseMin:    0.4,
		NoiseMax:    0.6,
	}
	evalRng := rand.New(rand.NewSource(3))
	x, labels := dnnmodel.BuildDataset(evalRng, dnnmodel.TrainSpec{
		SamplesPerClass: 5,
		Reps:            5, NoiseMin: 0.4, NoiseMax: 0.6,
		ParamValues: task.ParamValues,
	})
	var accOff, accOn float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		adapted := pre.DomainAdapt(rng, task, benchAdapt)
		accOff = pre.Net.Accuracy(x, labels)
		accOn = adapted.Net.Accuracy(x, labels)
	}
	b.ReportMetric(accOff*100, "generic-acc-%")
	b.ReportMetric(accOn*100, "adapted-acc-%")
}

// Ablation: optimizer choice for pretraining (final loss after a fixed
// budget; the paper uses AdaMax).
func BenchmarkAblationOptimizers(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, labels := dnnmodel.BuildDataset(rng, dnnmodel.TrainSpec{SamplesPerClass: 60, Reps: 5, NoiseMax: 1})
	for _, opt := range []nn.OptimizerKind{nn.AdaMax, nn.Adam, nn.SGD} {
		b.Run(opt.String(), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				net := nn.NewNetwork([]int{preprocess.InputSize, 64, 48, pmnf.NumClasses},
					rand.New(rand.NewSource(5)))
				lr := 0.0
				if opt == nn.SGD {
					lr = 0.05
				}
				stats := net.Train(x, labels, nn.TrainOptions{
					Epochs: 2, Optimizer: opt, LearningRate: lr,
					Rng: rand.New(rand.NewSource(6)),
				})
				loss = stats.FinalLoss()
			}
			b.ReportMetric(loss, "final-loss")
		})
	}
}

// --- Microbenchmarks for the substrates ---

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	x, y := mat.New(n, n), mat.New(n, n)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
		y.Data()[i] = rng.NormFloat64()
	}
	out := mat.New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTo(out, x, y)
	}
}

func BenchmarkLeastSquares(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := mat.New(125, 4)
	y := make([]float64, 125)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.LeastSquares(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessEncode(b *testing.B) {
	xs := []float64{8, 64, 512, 4096, 32768}
	vs := []float64{1.2, 8.1, 60.5, 470.3, 3800.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.Encode(xs, vs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegressionFitLine(b *testing.B) {
	xs := []float64{4, 8, 16, 32, 64}
	vs := []float64{11, 21, 39, 81, 162}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regression.FitLine(xs, vs, pmnf.Classes(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegressionModel3P(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	inst := synth.GenInstance(rng, synth.TaskSpec{
		NumParams: 3, PointsPerParam: 5, Reps: 5, NoiseLevel: 0.1, EvalPoints: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regression.Model(inst.Set, regression.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNNInference(b *testing.B) {
	pre := benchPretrained()
	in := make([]float64, preprocess.InputSize)
	for i := range in {
		in[i] = float64(i) / 11
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre.Net.TopK(in, 3)
	}
}

func BenchmarkDomainAdaptation(b *testing.B) {
	pre := benchPretrained()
	task := dnnmodel.TaskInfo{Reps: 5, NoiseMin: 0.1, NoiseMax: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		pre.DomainAdapt(rng, task, benchAdapt)
	}
}

func BenchmarkNoiseAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	app := apps.Kripke()
	set := app.Generate(rng, app.Kernels[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noise.Analyze(set)
	}
}

func BenchmarkPretrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dnnmodel.Pretrain(dnnmodel.PretrainConfig{
			Hidden:          []int{64, 48},
			SamplesPerClass: 100,
			Epochs:          1,
			Seed:            int64(i + 1),
		})
	}
}

// Ablation: restricting the regression search space to plain polynomials —
// the noise countermeasure used by several related works (Section II) —
// versus the full PMNF class set, at high noise.
func BenchmarkAblationRestrictedClasses(b *testing.B) {
	var polyOnly []pmnf.Exponents
	for _, e := range pmnf.Classes() {
		if e.J == 0 {
			polyOnly = append(polyOnly, e)
		}
	}
	for _, tc := range []struct {
		name    string
		classes []pmnf.Exponents
	}{{"full-pmnf", nil}, {"polynomials-only", polyOnly}} {
		b.Run(tc.name, func(b *testing.B) {
			var hits, total int
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				for f := 0; f < 20; f++ {
					inst := synth.GenInstance(rng, synth.TaskSpec{
						NumParams: 1, PointsPerParam: 5, Reps: 5, NoiseLevel: 0.75, EvalPoints: 1,
					})
					res, err := regression.Model(inst.Set, regression.Options{Classes: tc.classes})
					if err != nil {
						continue
					}
					total++
					if pmnf.LeadDistance(res.Model, inst.Truth) <= 0.5+1e-9 {
						hits++
					}
				}
			}
			if total > 0 {
				b.ReportMetric(float64(hits)/float64(total)*100, "acc-d1/2-%")
			}
		})
	}
}

// Ablation: dropout regularization during pretraining.
func BenchmarkAblationDropout(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x, labels := dnnmodel.BuildDataset(rng, dnnmodel.TrainSpec{SamplesPerClass: 60, Reps: 5, NoiseMax: 1})
	ex, elabels := dnnmodel.BuildDataset(rand.New(rand.NewSource(13)),
		dnnmodel.TrainSpec{SamplesPerClass: 10, Reps: 5, NoiseMax: 0.2})
	for _, dropout := range []float64{0, 0.2} {
		b.Run(fmt.Sprintf("dropout-%.1f", dropout), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				net := nn.NewNetwork([]int{preprocess.InputSize, 96, 64, pmnf.NumClasses},
					rand.New(rand.NewSource(14)))
				net.Train(x, labels, nn.TrainOptions{
					Epochs: 3, Dropout: dropout, Rng: rand.New(rand.NewSource(15)),
				})
				acc = net.Accuracy(ex, elabels)
			}
			b.ReportMetric(acc*100, "heldout-acc-%")
		})
	}
}
