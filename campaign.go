package extrapdnn

import (
	"context"
	"fmt"
	"io"

	"extrapdnn/internal/design"
	"extrapdnn/internal/obs"
	"extrapdnn/internal/parallel"
	"extrapdnn/internal/profile"
)

// Application profiles: complete measurement campaigns with one measurement
// set per kernel, the shape in which instrumented applications deliver data.
type (
	// Profile is a complete application measurement campaign.
	Profile = profile.Profile
	// ProfileEntry is the measurements of one kernel and metric.
	ProfileEntry = profile.Entry
)

// ReadProfile parses and validates an application profile from JSON (as
// written by Profile.Write or cmd/appsim).
func ReadProfile(r io.Reader) (*Profile, error) {
	return profile.Read(r)
}

// ModelProfile models every entry of an application profile with the
// adaptive modeler and returns the reports in entry order. Entries that fail
// to model carry a nil report and the error; one unmodelable kernel never
// hides the results of the others. Entries are modeled concurrently with the
// worker count configured in Options.Workers (default GOMAXPROCS); because
// Model is a pure function of each entry's measurement set, the reports are
// bit-identical regardless of the worker count.
//
// All entries share the modeler's adaptation cache: kernels whose task
// signatures match (same experiment layout, repetition count and quantized
// noise bucket — the common case inside one application profile) pay a
// single domain adaptation between them, and concurrent misses on one
// signature coalesce into one training run. AdaptCacheStats reports the
// resulting hit/miss counts.
func (m *AdaptiveModeler) ModelProfile(p *Profile) ([]ProfileReport, error) {
	return m.ModelProfileWorkers(p, m.workers)
}

// ModelProfileWorkers is ModelProfile with an explicit worker count
// (<= 0 means GOMAXPROCS), overriding Options.Workers.
func (m *AdaptiveModeler) ModelProfileWorkers(p *Profile, workers int) ([]ProfileReport, error) {
	return m.ModelProfileWorkersCtx(context.Background(), p, workers)
}

// ModelProfileCtx is ModelProfile with cancellation (see
// ModelProfileWorkersCtx).
func (m *AdaptiveModeler) ModelProfileCtx(ctx context.Context, p *Profile) ([]ProfileReport, error) {
	return m.ModelProfileWorkersCtx(ctx, p, m.workers)
}

// ModelProfileWorkersCtx is ModelProfileWorkers with cancellation: once ctx
// is done, no further entries are dispatched, in-flight entries stop at their
// next training-epoch boundary, and the partial reports are returned together
// with ctx's error — entries that never ran carry ctx's error as their
// per-entry Err. A panicking entry (e.g. a corrupted measurement set tripping
// a kernel-level bug) degrades into a per-entry *parallel.PanicError instead
// of crashing the campaign.
func (m *AdaptiveModeler) ModelProfileWorkersCtx(ctx context.Context, p *Profile, workers int) ([]ProfileReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	runCtx, runSpan := obs.StartSpan(ctx, "profile.run")
	if runSpan != nil {
		runSpan.SetInt("entries", int64(len(p.Entries)))
		runSpan.SetInt("workers", int64(workers))
		defer runSpan.End()
	}
	reports, errs := parallel.MapErrCtx(ctx, len(p.Entries), workers, func(i int) (*Report, error) {
		e := p.Entries[i]
		entryCtx, span := obs.StartSpan(runCtx, "profile.entry")
		if span != nil {
			span.SetString(obs.KernelAttr, e.Kernel)
			span.SetString("metric", e.Metric)
			defer span.End()
		}
		rep, err := m.ModelCtx(entryCtx, e.Set)
		if err != nil {
			span.SetString("error", err.Error())
			return nil, err
		}
		return &rep, nil
	})
	out := make([]ProfileReport, len(p.Entries))
	for i, e := range p.Entries {
		pr := ProfileReport{Kernel: e.Kernel, Metric: e.Metric, Report: reports[i]}
		if errs != nil {
			pr.Err = errs[i]
		}
		out[i] = pr
	}
	return out, ctx.Err()
}

// ProfileReport is the outcome of modeling one profile entry.
type ProfileReport struct {
	Kernel string
	Metric string
	Report *Report
	Err    error
}

// ProfileError flattens the per-entry failures of a profile run into one
// structured multi-error naming each failed kernel (errors.Join semantics:
// errors.Is/As see every cause), or nil when every entry modeled. Use it to
// decide process exit codes after a partially failed campaign.
func ProfileError(reports []ProfileReport) error {
	var errs []error
	for _, r := range reports {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", r.Kernel, r.Metric, r.Err))
		}
	}
	return parallel.JoinErrs(errs)
}

// Experiment design: planning which measurement points to run.
type (
	// Design is a planned set of measurement points with repetitions.
	Design = design.Design
	// CostModel estimates campaign cost in core-hours.
	CostModel = design.CostModel
)

// FullGridDesign plans the cartesian product of all parameter values — the
// thorough (and expensive) campaign layout.
func FullGridDesign(values [][]float64, reps int) Design {
	return design.FullGrid(values, reps)
}

// CrossingLinesDesign plans the cheapest valid layout: one measurement line
// per parameter at the lowest values of the other parameters, plus one
// interaction point so additive and multiplicative parameter effects can be
// distinguished.
func CrossingLinesDesign(values [][]float64, reps int) (Design, error) {
	return design.CrossingLines(values, reps, true)
}
