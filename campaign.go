package extrapdnn

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"extrapdnn/internal/design"
	"extrapdnn/internal/obs"
	"extrapdnn/internal/parallel"
	"extrapdnn/internal/profile"
)

// Application profiles: complete measurement campaigns with one measurement
// set per kernel, the shape in which instrumented applications deliver data.
type (
	// Profile is a complete application measurement campaign.
	Profile = profile.Profile
	// ProfileEntry is the measurements of one kernel and metric.
	ProfileEntry = profile.Entry
	// ProfileSource yields profile entries one at a time (io.EOF at the end);
	// it is the input of the streaming campaign pipeline.
	ProfileSource = profile.Source
	// ProfileScanner streams profile entries from disk with O(1) memory per
	// campaign, accepting both the JSONL stream format and the legacy
	// single-object array format.
	ProfileScanner = profile.Scanner
)

// ReadProfile parses and validates an application profile from JSON (as
// written by Profile.Write or cmd/appsim). The whole profile is materialized;
// for large campaigns prefer NewProfileScanner with ModelProfileStream.
func ReadProfile(r io.Reader) (*Profile, error) {
	return profile.Read(r)
}

// NewProfileScanner opens a streaming profile reader over r. The scanner
// decodes (and sanitizes, like ReadProfile) one entry at a time, so a
// campaign of any size is modeled in O(MaxInFlight) memory when fed to
// ModelProfileStream.
func NewProfileScanner(r io.Reader) (*ProfileScanner, error) {
	return profile.NewScanner(r)
}

// ProfileEntries adapts an in-memory entry slice into a ProfileSource for
// ModelProfileStream. No validation is applied.
func ProfileEntries(entries []ProfileEntry) ProfileSource {
	return profile.Entries(entries)
}

// StreamOptions tunes ModelProfileStream.
type StreamOptions struct {
	// Workers bounds the concurrently modeled entries (<= 0 means the
	// modeler's Options.Workers, then GOMAXPROCS).
	Workers int
	// MaxInFlight bounds the entries pulled from the source but not yet
	// emitted — queued, training, or held for in-order delivery (<= 0 means
	// 2*Workers). Together with a streaming source this is the campaign's
	// memory bound: at most MaxInFlight measurement sets are live at once.
	MaxInFlight int
	// Ordered delivers reports in input order through a bounded reorder
	// buffer; the default is completion order (lowest latency). Checkpoint
	// writers want Ordered so the output file is always a clean prefix of
	// the input.
	Ordered bool
}

// StreamReport is one streamed campaign result: the profile report plus the
// entry's position in the input stream.
type StreamReport struct {
	// Index is the entry's 0-based position in the source stream.
	Index int
	ProfileReport
}

// ModelProfileStream models a campaign incrementally: entries are pulled from
// src one at a time (a ProfileScanner, a checkpoint Filter, or an in-memory
// adaptor), modeled with bounded concurrency, and handed to emit as they
// complete — in completion order, or input order with opts.Ordered. At most
// opts.MaxInFlight entries are in flight, so campaign memory is
// O(MaxInFlight) regardless of campaign size. Because Model is a pure
// function of each entry's measurement set, the reports are bit-identical to
// ModelProfile at any worker count and in-flight bound.
//
// Per-entry failures (including panics, isolated into *parallel.PanicError)
// are delivered through emit with a nil Report and the error; they do not
// stop the stream. The pipeline stops early when ctx is canceled (in-flight
// entries drain, then ctx.Err() is returned), when src fails (its error is
// returned after the in-flight entries drain), or when emit returns a
// non-nil error (returned immediately; with opts.Ordered nothing is emitted
// after the failure, keeping emit-side checkpoint files a clean prefix).
// ModelProfileStream returns nil only when every entry of src was modeled
// and emitted.
//
// All entries share the modeler's adaptation cache exactly like
// ModelProfile: matching task signatures pay a single domain adaptation,
// and concurrent misses coalesce.
func (m *AdaptiveModeler) ModelProfileStream(ctx context.Context, src ProfileSource, opts StreamOptions, emit func(StreamReport) error) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = m.workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runCtx, runSpan := obs.StartSpan(ctx, "profile.run")
	emitted := 0
	if runSpan != nil {
		runSpan.SetInt("workers", int64(workers))
		defer func() {
			runSpan.SetInt("entries", int64(emitted))
			runSpan.End()
		}()
	}
	return parallel.Stream(ctx,
		parallel.StreamConfig{Workers: workers, MaxInFlight: opts.MaxInFlight, Ordered: opts.Ordered},
		src.NextEntry,
		func(_ context.Context, index int, e ProfileEntry) (*Report, error) {
			entryCtx, span := obs.StartSpan(runCtx, "profile.entry")
			if span != nil {
				span.SetString(obs.KernelAttr, e.Kernel)
				span.SetString("metric", e.Metric)
				defer span.End()
			}
			rep, err := m.ModelCtx(entryCtx, e.Set)
			if err != nil {
				span.SetString("error", err.Error())
				return nil, err
			}
			return &rep, nil
		},
		func(index int, e ProfileEntry, rep *Report, err error) error {
			emitted++
			return emit(StreamReport{
				Index:         index,
				ProfileReport: ProfileReport{Kernel: e.Kernel, Metric: e.Metric, Report: rep, Err: err},
			})
		})
}

// ModelProfile models every entry of an application profile with the
// adaptive modeler and returns the reports in entry order. Entries that fail
// to model carry a nil report and the error; one unmodelable kernel never
// hides the results of the others, but the flattened ProfileError of the
// failures is returned alongside the full report slice so callers cannot
// mistake a partial campaign for a clean one. Entries are modeled
// concurrently with the worker count configured in Options.Workers (default
// GOMAXPROCS); because Model is a pure function of each entry's measurement
// set, the reports are bit-identical regardless of the worker count.
//
// All entries share the modeler's adaptation cache: kernels whose task
// signatures match (same experiment layout, repetition count and quantized
// noise bucket — the common case inside one application profile) pay a
// single domain adaptation between them, and concurrent misses on one
// signature coalesce into one training run. AdaptCacheStats reports the
// resulting hit/miss counts.
func (m *AdaptiveModeler) ModelProfile(p *Profile) ([]ProfileReport, error) {
	return m.ModelProfileWorkers(p, m.workers)
}

// ModelProfileWorkers is ModelProfile with an explicit worker count
// (<= 0 means GOMAXPROCS), overriding Options.Workers.
func (m *AdaptiveModeler) ModelProfileWorkers(p *Profile, workers int) ([]ProfileReport, error) {
	return m.ModelProfileWorkersCtx(context.Background(), p, workers)
}

// ModelProfileCtx is ModelProfile with cancellation (see
// ModelProfileWorkersCtx).
func (m *AdaptiveModeler) ModelProfileCtx(ctx context.Context, p *Profile) ([]ProfileReport, error) {
	return m.ModelProfileWorkersCtx(ctx, p, m.workers)
}

// ModelProfileWorkersCtx is ModelProfileWorkers with cancellation. It is a
// thin wrapper over ModelProfileStream: the validated entries stream through
// the bounded pipeline in input order and land back in an entry-indexed
// slice, so the reports are bit-identical to the streaming path.
//
// Once ctx is done, no further entries are dispatched, in-flight entries
// stop at their next training-epoch boundary, and the partial reports are
// returned together with ctx's error — entries that never ran carry ctx's
// error as their per-entry Err. When ctx is NOT canceled but some entries
// failed, the flattened ProfileError of the failures is returned alongside
// the full report slice (errors.Is/As see every cause); a panicking entry
// degrades into a per-entry *parallel.PanicError instead of crashing the
// campaign. The error is nil only when every entry modeled cleanly.
func (m *AdaptiveModeler) ModelProfileWorkersCtx(ctx context.Context, p *Profile, workers int) ([]ProfileReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]ProfileReport, len(p.Entries))
	filled := make([]bool, len(p.Entries))
	streamErr := m.ModelProfileStream(ctx, profile.Entries(p.Entries),
		StreamOptions{Workers: workers, Ordered: true},
		func(r StreamReport) error {
			out[r.Index] = r.ProfileReport
			filled[r.Index] = true
			return nil
		})
	// Entries the canceled pipeline never pulled (or pulled but dropped
	// before dispatch) carry ctx's error, matching the batch contract.
	for i, e := range p.Entries {
		if !filled[i] {
			out[i] = ProfileReport{Kernel: e.Kernel, Metric: e.Metric, Err: ctx.Err()}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if streamErr != nil {
		return out, streamErr
	}
	return out, ProfileError(out)
}

// ProfileReport is the outcome of modeling one profile entry.
type ProfileReport struct {
	Kernel string
	Metric string
	Report *Report
	Err    error
}

// ProfileError flattens the per-entry failures of a profile run into one
// structured multi-error naming each failed kernel (errors.Join semantics:
// errors.Is/As see every cause), or nil when every entry modeled. Use it to
// decide process exit codes after a partially failed campaign.
func ProfileError(reports []ProfileReport) error {
	var errs []error
	for _, r := range reports {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", r.Kernel, r.Metric, r.Err))
		}
	}
	return parallel.JoinErrs(errs)
}

// Experiment design: planning which measurement points to run.
type (
	// Design is a planned set of measurement points with repetitions.
	Design = design.Design
	// CostModel estimates campaign cost in core-hours.
	CostModel = design.CostModel
)

// FullGridDesign plans the cartesian product of all parameter values — the
// thorough (and expensive) campaign layout.
func FullGridDesign(values [][]float64, reps int) Design {
	return design.FullGrid(values, reps)
}

// CrossingLinesDesign plans the cheapest valid layout: one measurement line
// per parameter at the lowest values of the other parameters, plus one
// interaction point so additive and multiplicative parameter effects can be
// distinguished.
func CrossingLinesDesign(values [][]float64, reps int) (Design, error) {
	return design.CrossingLines(values, reps, true)
}
